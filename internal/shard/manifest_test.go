package shard

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/gpu"
	"repro/internal/traceerr"
)

// frameRaw puts an arbitrary payload in the .s3dc container framing.
func frameRaw(payload []byte) []byte { return cache.EncodeFramed(payload) }

// testManifest builds a small, valid manifest by hand.
func testManifest() *Manifest {
	m := &Manifest{
		Version:  ManifestVersion,
		Grid:     GridDigest{1, 2, 3},
		GridSize: 6,
		Shard:    Spec{Index: 1, Count: 2},
	}
	m.Workload[0] = 0xab
	for _, seq := range []int{1, 3, 5} {
		e := Entry{
			Seq:          seq,
			CoreClockGHz: 1.0 + float64(seq)*0.25,
			MemClockGHz:  1.0,
			Frames:       16,
			TotalNs:      1e6 * float64(seq+1),
			Totals:       gpu.Totals{TotalNs: 1e6, ComputeNs: 6e5, MemoryNs: 4e5, TrafficBytes: 1 << 20},
		}
		e.ConfigFP[0] = byte(seq)
		e.FrameDigest[1] = byte(seq)
		e.Key[2] = byte(seq)
		m.Entries = append(m.Entries, e)
	}
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || got.Workload != m.Workload || got.Grid != m.Grid ||
		got.GridSize != m.GridSize || got.Shard != m.Shard || len(got.Entries) != len(m.Entries) {
		t.Fatalf("round trip mutated header: %+v", got)
	}
	for i := range m.Entries {
		if got.Entries[i] != m.Entries[i] {
			t.Fatalf("entry %d mutated: %+v vs %+v", i, got.Entries[i], m.Entries[i])
		}
	}
	// Gob over this fixed schema must be deterministic: the manifest is
	// the unit the double-claim test compares byte-for-byte.
	data2, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeManifestClassifiesCorruption(t *testing.T) {
	m := testManifest()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, mutate func([]byte) []byte, want error) {
		t.Helper()
		_, err := DecodeManifest(mutate(append([]byte(nil), data...)))
		if !errors.Is(err, want) {
			t.Fatalf("%s: got %v, want %v", name, err, want)
		}
	}
	check("truncated header", func(b []byte) []byte { return b[:10] }, traceerr.ErrTruncated)
	check("truncated payload", func(b []byte) []byte { return b[:len(b)-3] }, traceerr.ErrTruncated)
	check("bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, traceerr.ErrCorruptRecord)
	check("container version skew", func(b []byte) []byte { b[5] = 99; return b }, traceerr.ErrVersionMismatch)
	check("payload bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, traceerr.ErrCorruptRecord)
	check("trailing garbage", func(b []byte) []byte { return append(b, 0) }, traceerr.ErrCorruptRecord)
	// A well-framed container whose payload is not a gob manifest.
	garbage := []byte("not a gob stream")
	if _, err := DecodeManifest(frameRaw(garbage)); !errors.Is(err, traceerr.ErrCorruptRecord) {
		t.Fatalf("non-gob payload: %v", err)
	}
}

func TestDecodeManifestPayloadVersionSkew(t *testing.T) {
	m := testManifest()
	m.Version = ManifestVersion + 1
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(data); !errors.Is(err, traceerr.ErrVersionMismatch) {
		t.Fatalf("future manifest version: %v", err)
	}
}

func TestDecodeManifestRejectsInvalidStructure(t *testing.T) {
	for name, mutate := range map[string]func(*Manifest){
		"bad shard spec":    func(m *Manifest) { m.Shard = Spec{Index: 9, Count: 2} },
		"zero grid":         func(m *Manifest) { m.GridSize = 0 },
		"entries over grid": func(m *Manifest) { m.GridSize = 2 },
		"seq out of range":  func(m *Manifest) { m.Entries[2].Seq = 6 },
		"seq not ascending": func(m *Manifest) { m.Entries[1].Seq = 1 },
		"negative frames":   func(m *Manifest) { m.Entries[0].Frames = -1 },
	} {
		m := testManifest()
		mutate(m)
		data, err := m.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := DecodeManifest(data); !errors.Is(err, traceerr.ErrCorruptRecord) {
			t.Fatalf("%s: got %v, want ErrCorruptRecord", name, err)
		}
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	path, err := m.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "shard-2of2.s3dm" {
		t.Fatalf("conventional name: %s", path)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != m.Shard || len(got.Entries) != len(m.Entries) {
		t.Fatalf("file round trip mutated manifest: %+v", got)
	}

	// A second shard's manifest lands beside it; ReadDir returns both
	// and no temp debris is left behind.
	m2 := testManifest()
	m2.Shard = Spec{Index: 0, Count: 2}
	if _, err := m2.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	ms, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("ReadDir found %d manifests, want 2", len(ms))
	}
	if ms[0].Shard != m2.Shard || ms[1].Shard != m.Shard {
		t.Fatalf("ReadDir order not name-sorted: %v then %v", ms[0].Shard, ms[1].Shard)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("directory has %d files, want the 2 manifests only", len(ents))
	}

	// ReadDir refuses an empty directory (a merge with nothing to fold
	// is an operator error, not an empty success).
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Fatal("ReadDir of empty dir succeeded")
	}
	// And surfaces corruption of any member.
	if err := os.WriteFile(filepath.Join(dir, "shard-9of9.s3dm"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); !errors.Is(err, traceerr.ErrTruncated) {
		t.Fatalf("ReadDir over junk member: %v", err)
	}
}

func TestFrameDigest(t *testing.T) {
	a := frameDigest([]float64{1, 2, 3})
	if a != frameDigest([]float64{1, 2, 3}) {
		t.Fatal("frameDigest not deterministic")
	}
	if a == frameDigest([]float64{3, 2, 1}) {
		t.Fatal("frameDigest ignores frame order")
	}
	if frameDigest(nil) != sha256.Sum256(nil) {
		t.Fatal("empty curve should hash to SHA-256 of empty input")
	}
}
