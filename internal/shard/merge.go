package shard

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/gpu"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// RunManifestVersion versions the merged run-manifest JSON schema.
const RunManifestVersion = 1

// RunEntry is one grid point in the merged run manifest.
type RunEntry struct {
	Seq          int     `json:"seq"`
	CoreClockGHz float64 `json:"core_clock_ghz"`
	MemClockGHz  float64 `json:"mem_clock_ghz"`
	ConfigFP     string  `json:"config_fp"`
	Key          string  `json:"key"`
	Frames       int     `json:"frames"`
	FrameDigest  string  `json:"frame_digest"`
	TotalNs      float64 `json:"total_ns"`
	ComputeNs    float64 `json:"compute_ns"`
	MemoryNs     float64 `json:"memory_ns"`
	TrafficBytes float64 `json:"traffic_bytes"`

	// SpeedupVsFirst is entry 0's runtime over this entry's — the
	// sweep's pathfinding signal, normalized to the grid's first config.
	SpeedupVsFirst float64 `json:"speedup_vs_first"`
}

// RunManifest is the reduced product of a sweep: one entry per grid
// point in grid order, plus the folded aggregates. It is the
// byte-exactness contract of the shard layer — the sequential path and
// any merge of any shard partition must Encode to identical bytes.
type RunManifest struct {
	SchemaVersion int    `json:"schema_version"`
	Workload      string `json:"workload_fp"`
	Grid          string `json:"grid_digest"`
	Configs       int    `json:"configs"`

	// BestSeq is the argmin of TotalNs over the grid; ties break to the
	// lowest seq, so "best" is a pure fold in grid order.
	BestSeq     int     `json:"best_seq"`
	BestTotalNs float64 `json:"best_total_ns"`

	// SumTotalNs folds entry totals in grid order — the sweep's total
	// simulated time, and a one-number tripwire for any fold-order
	// drift.
	SumTotalNs float64 `json:"sum_total_ns"`

	Entries []RunEntry `json:"entries"`

	// Digest is the SHA-256 (hex) of this manifest encoded with Digest
	// itself blank: a self-certifying identity, so two runs are
	// byte-identical iff their digests match.
	Digest string `json:"digest"`
}

// foldRun reduces a complete, grid-ordered entry set to the run
// manifest. Every aggregate is a left fold in grid order; this helper
// is the only fold implementation, shared by the sequential path and
// the merge path, so the two cannot disagree.
func foldRun(workload trace.Fingerprint, grid GridDigest, gridSize int, entries []Entry) (*RunManifest, error) {
	if len(entries) != gridSize {
		return nil, fmt.Errorf("shard: folding %d entries over a grid of %d", len(entries), gridSize)
	}
	rm := &RunManifest{
		SchemaVersion: RunManifestVersion,
		Workload:      fmt.Sprintf("%x", workload[:]),
		Grid:          grid.String(),
		Configs:       gridSize,
		Entries:       make([]RunEntry, 0, gridSize),
	}
	first := entries[0].TotalNs
	for i := range entries {
		e := &entries[i]
		if e.Seq != i {
			return nil, fmt.Errorf("shard: fold expects seq %d, got %d", i, e.Seq)
		}
		speedup := 0.0
		if e.TotalNs != 0 {
			speedup = first / e.TotalNs
		}
		rm.Entries = append(rm.Entries, RunEntry{
			Seq:            e.Seq,
			CoreClockGHz:   e.CoreClockGHz,
			MemClockGHz:    e.MemClockGHz,
			ConfigFP:       fmt.Sprintf("%x", e.ConfigFP[:]),
			Key:            e.Key.String(),
			Frames:         e.Frames,
			FrameDigest:    fmt.Sprintf("%x", e.FrameDigest[:]),
			TotalNs:        e.TotalNs,
			ComputeNs:      e.Totals.ComputeNs,
			MemoryNs:       e.Totals.MemoryNs,
			TrafficBytes:   e.Totals.TrafficBytes,
			SpeedupVsFirst: speedup,
		})
		rm.SumTotalNs += e.TotalNs
		if i == 0 || e.TotalNs < rm.BestTotalNs {
			rm.BestSeq = e.Seq
			rm.BestTotalNs = e.TotalNs
		}
	}
	data, err := rm.encode()
	if err != nil {
		return nil, err
	}
	rm.Digest = fmt.Sprintf("%x", sha256.Sum256(data))
	return rm, nil
}

// encode is the canonical serialization (indented JSON, trailing
// newline). The digest is computed over the encoding with Digest
// blank, then filled in — Encode on a folded manifest includes it.
func (rm *RunManifest) encode() ([]byte, error) {
	data, err := json.MarshalIndent(rm, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("shard: encode run manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// Encode serializes the run manifest to its canonical byte form.
func (rm *RunManifest) Encode() ([]byte, error) { return rm.encode() }

// Render writes the human-readable sweep table. Sequential and merged
// runs print through this one renderer, so their stdout is
// byte-comparable too.
func (rm *RunManifest) Render(w io.Writer) {
	fmt.Fprintf(w, "sweep     %d configs  workload %s\n", rm.Configs, rm.Workload[:12])
	fmt.Fprintf(w, "%-4s  %9s  %8s  %12s  %8s\n", "seq", "core GHz", "mem GHz", "total ms", "speedup")
	for i := range rm.Entries {
		e := &rm.Entries[i]
		marker := " "
		if e.Seq == rm.BestSeq {
			marker = "*"
		}
		fmt.Fprintf(w, "%-4d  %9.2f  %8.2f  %12.3f  %7.2fx %s\n",
			e.Seq, e.CoreClockGHz, e.MemClockGHz, e.TotalNs/1e6, e.SpeedupVsFirst, marker)
	}
	fmt.Fprintf(w, "best      seq %d (core %.2f GHz, mem %.2f GHz)  %.3f ms\n",
		rm.BestSeq, rm.Entries[rm.BestSeq].CoreClockGHz, rm.Entries[rm.BestSeq].MemClockGHz,
		rm.BestTotalNs/1e6)
}

// Merge folds per-shard manifests into the run manifest. The manifests
// must all describe the same sweep (workload, grid digest, grid size);
// together they must cover every grid task; and where they overlap —
// two shards that both resolved a task, by cache hit or duplicated
// compute — the duplicate entries must agree exactly, or the merge
// fails loudly rather than pick a side. The fold itself ignores which
// shard contributed an entry: results depend only on the grid.
func Merge(ms []*Manifest) (*RunManifest, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("shard: merge of zero manifests")
	}
	ref := ms[0]
	bySeq := make([]*Entry, ref.GridSize)
	from := make([]Spec, ref.GridSize)
	for _, m := range ms {
		if m.Version != ref.Version {
			return nil, fmt.Errorf("shard: merge: manifest versions differ (%d vs %d)", m.Version, ref.Version)
		}
		if m.Workload != ref.Workload {
			return nil, fmt.Errorf("shard: merge: shard %s priced workload %x, shard %s priced %x",
				m.Shard, m.Workload[:6], ref.Shard, ref.Workload[:6])
		}
		if m.Grid != ref.Grid || m.GridSize != ref.GridSize {
			return nil, fmt.Errorf("shard: merge: shard %s ran a different grid than shard %s",
				m.Shard, ref.Shard)
		}
		for i := range m.Entries {
			e := &m.Entries[i]
			if prev := bySeq[e.Seq]; prev != nil {
				if *prev != *e {
					return nil, fmt.Errorf("shard: merge: task %d computed differently by shard %s and shard %s — cache or model mismatch",
						e.Seq, from[e.Seq], m.Shard)
				}
				continue
			}
			bySeq[e.Seq] = e
			from[e.Seq] = m.Shard
		}
	}
	entries := make([]Entry, ref.GridSize)
	missing, firstGap := 0, -1
	for seq, e := range bySeq {
		if e == nil {
			missing++
			if firstGap < 0 {
				firstGap = seq
			}
			continue
		}
		entries[seq] = *e
	}
	if missing > 0 {
		return nil, fmt.Errorf("shard: merge: %d of %d tasks missing (first gap: task %d) — a shard has not completed",
			missing, ref.GridSize, firstGap)
	}
	return foldRun(ref.Workload, ref.Grid, ref.GridSize, entries)
}

// RunSequential prices the whole grid in-process, in grid order, and
// folds it with the same foldRun the merge path uses. This is the
// reference the determinism suite compares every sharded run against;
// it is also gpusim's single-process sweep mode. A non-nil cache is
// consulted and populated exactly like a worker's, so sequential and
// sharded runs interoperate on one cache directory.
func RunSequential(ctx context.Context, c *cache.Cache, w *trace.Workload, cfgs []gpu.Config) (*RunManifest, error) {
	fp := w.Fingerprint()
	tasks, grid, err := Plan(fp, cfgs)
	if err != nil {
		return nil, err
	}
	base, err := gpu.NewSimulator(cfgs[0], w)
	if err != nil {
		return nil, err
	}
	cctx := cache.WithWorkload(ctx, c, fp)
	entries := make([]Entry, 0, len(tasks))
	for _, t := range tasks {
		_, priced, err := sweep.PriceConfig(cctx, base, w, t.Config, t.Seq, len(tasks))
		if err != nil {
			return nil, err
		}
		entries = append(entries, Entry{
			Seq:          t.Seq,
			CoreClockGHz: t.Config.CoreClockGHz,
			MemClockGHz:  t.Config.MemClockGHz,
			ConfigFP:     t.Config.Fingerprint(),
			Key:          t.Key,
			Frames:       len(priced.FrameNs),
			FrameDigest:  frameDigest(priced.FrameNs),
			TotalNs:      priced.TotalNs,
			Totals:       priced.Totals,
		})
	}
	return foldRun(fp, grid, len(tasks), entries)
}
