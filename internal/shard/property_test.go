package shard

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/trace"
)

// fullManifest runs one cacheless full-grid worker and returns its
// manifest — the complete entry set every partition below is carved
// from.
func fullManifest(t *testing.T, w *trace.Workload, cfgs []gpu.Config) *Manifest {
	t.Helper()
	wk := NewWorker(WorkerOptions{})
	m, _, err := wk.Run(context.Background(), w, cfgs, Spec{Index: 0, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// carve builds a manifest holding the given entry subset (any order;
// carve sorts by seq as a well-formed shard would).
func carve(full *Manifest, spec Spec, seqs []int) *Manifest {
	bySeq := map[int]Entry{}
	for _, e := range full.Entries {
		bySeq[e.Seq] = e
	}
	m := &Manifest{
		Version:  full.Version,
		Workload: full.Workload,
		Grid:     full.Grid,
		GridSize: full.GridSize,
		Shard:    spec,
	}
	sorted := append([]int(nil), seqs...)
	sort.Ints(sorted)
	prev := -1
	for _, s := range sorted {
		if s == prev {
			continue
		}
		prev = s
		m.Entries = append(m.Entries, bySeq[s])
	}
	return m
}

// TestMergeDigestInvariantUnderAnyPartition is the reducer's property
// test: however the grid's tasks are scattered across manifests —
// round-robin, contiguous, random, lopsided (empty shards included),
// or overlapping (tasks present in several shards) — Merge folds them
// to the same digest as the trivial single-shard merge, which the
// determinism suite separately proves equal to the sequential run.
func TestMergeDigestInvariantUnderAnyPartition(t *testing.T) {
	w := testWorkload(t, 7)
	cfgs := testGrid(4, 3)
	full := fullManifest(t, w, cfgs)
	ref, err := Merge([]*Manifest{full})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	n := len(full.Entries)
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(5)
		groups := make([][]int, k)
		for seq := 0; seq < n; seq++ {
			// Home shard, plus a chance of duplication into another —
			// the overlapping-shards case Merge must reconcile.
			home := rng.Intn(k)
			groups[home] = append(groups[home], seq)
			if rng.Intn(4) == 0 {
				dup := rng.Intn(k)
				groups[dup] = append(groups[dup], seq)
			}
		}
		var ms []*Manifest
		for i, g := range groups {
			ms = append(ms, carve(full, Spec{Index: i, Count: k}, g))
		}
		// Shuffle merge input order too: the fold must not care which
		// manifest is read first.
		rng.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
		got, err := Merge(ms)
		if err != nil {
			t.Fatalf("trial %d (%d groups): %v", trial, k, err)
		}
		if got.Digest != ref.Digest {
			t.Fatalf("trial %d (%d groups): digest %s != reference %s", trial, k, got.Digest, ref.Digest)
		}
	}
}

func TestMergeRejectsMissingTasks(t *testing.T) {
	w := testWorkload(t, 7)
	cfgs := testGrid(2, 2)
	full := fullManifest(t, w, cfgs)
	holed := carve(full, Spec{Index: 0, Count: 1}, []int{0, 1, 3}) // task 2 missing
	_, err := Merge([]*Manifest{holed})
	if err == nil || !strings.Contains(err.Error(), "task 2") {
		t.Fatalf("merge with a gap: %v", err)
	}
}

func TestMergeRejectsConflictingDuplicates(t *testing.T) {
	w := testWorkload(t, 7)
	cfgs := testGrid(2, 2)
	full := fullManifest(t, w, cfgs)
	a := carve(full, Spec{Index: 0, Count: 2}, []int{0, 1, 2, 3})
	b := carve(full, Spec{Index: 1, Count: 2}, []int{2, 3})
	b.Entries[0].TotalNs += 1 // shard 2/2 "computed" task 2 differently
	if _, err := Merge([]*Manifest{a, b}); err == nil || !strings.Contains(err.Error(), "task 2") {
		t.Fatalf("merge with conflicting duplicates: %v", err)
	}
}

func TestMergeRejectsMixedSweeps(t *testing.T) {
	w := testWorkload(t, 7)
	cfgs := testGrid(2, 2)
	full := fullManifest(t, w, cfgs)
	a := carve(full, Spec{Index: 0, Count: 2}, []int{0, 1, 2, 3})

	other := carve(full, Spec{Index: 1, Count: 2}, nil)
	other.Grid[0] ^= 0xff
	if _, err := Merge([]*Manifest{a, other}); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("merge across grids: %v", err)
	}

	alien := carve(full, Spec{Index: 1, Count: 2}, nil)
	alien.Workload[0] ^= 0xff
	if _, err := Merge([]*Manifest{a, alien}); err == nil || !strings.Contains(err.Error(), "workload") {
		t.Fatalf("merge across workloads: %v", err)
	}

	skewed := carve(full, Spec{Index: 1, Count: 2}, nil)
	skewed.Version = ManifestVersion + 1
	if _, err := Merge([]*Manifest{a, skewed}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("merge across versions: %v", err)
	}

	if _, err := Merge(nil); err == nil {
		t.Fatal("merge of zero manifests succeeded")
	}
}
