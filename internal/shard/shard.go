// Package shard distributes a config-grid sweep — the paper's
// pathfinding use case, thousands of configurations priced on one
// parent workload — across processes that share nothing but a cache
// directory.
//
// The model is coordinator-free: a sweep over N configs is a fixed,
// deterministically ordered list of tasks (grid order, exactly the
// fold order of the sequential path), and a shard spec "i/n" owns
// every task whose sequence number is congruent to i-1 mod n. Each
// worker claims its tasks by content-addressed cache key
// (sweep.PriceKey), prices them into the shared cache, and emits a
// per-shard manifest. A reducer (Merge) folds any set of manifests
// covering the grid back into one run manifest, folding in grid order
// — so the merged result is byte-identical to the sequential run no
// matter how the grid was partitioned, how many workers ran, or how
// many times one crashed and was restarted.
//
// Nothing here is allowed to change results. The determinism suite in
// this package proves sharded == sequential byte-identity across
// profiles, seeds and shard counts, including a worker killed
// mid-shard and fully overlapping (double-claiming) shards.
package shard

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/gpu"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Spec identifies one shard of a sweep: Index in [0, Count). The
// external notation (flags, API, String) is 1-based — "3/8" is the
// third of eight shards, Spec{Index: 2, Count: 8}.
type Spec struct {
	Index int
	Count int
}

// ParseSpec parses the 1-based "i/n" notation.
func ParseSpec(s string) (Spec, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Spec{}, fmt.Errorf("shard: spec %q: want \"i/n\", e.g. 1/4", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(is))
	if err != nil {
		return Spec{}, fmt.Errorf("shard: spec %q: bad index: %v", s, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(ns))
	if err != nil {
		return Spec{}, fmt.Errorf("shard: spec %q: bad count: %v", s, err)
	}
	sp := Spec{Index: i - 1, Count: n}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// Validate rejects out-of-range specs.
func (s Spec) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("shard: count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("shard: index %d outside 1..%d", s.Index+1, s.Count)
	}
	return nil
}

// String renders the 1-based notation ParseSpec accepts.
func (s Spec) String() string { return fmt.Sprintf("%d/%d", s.Index+1, s.Count) }

// Owns reports whether the shard owns grid task seq. Round-robin
// assignment: adjacent grid points land on different shards, so a
// grid whose cost varies smoothly across clocks load-balances without
// any coordinator.
func (s Spec) Owns(seq int) bool { return seq%s.Count == s.Index }

// Task is one unit of distributed work: pricing the parent workload on
// one grid configuration. Seq is the task's position in grid order —
// the one and only fold order — and Key is its content address in the
// shared cache, identical to what the sequential path stores under.
type Task struct {
	Seq    int
	Config gpu.Config
	Key    cache.Key
}

// GridDigest fingerprints a config grid: the count and every config's
// cost-model fingerprint, in grid order. Manifests carry it so a merge
// can refuse to mix shards of different sweeps (or differently ordered
// grids — order is the fold order, so it is part of the identity).
type GridDigest [sha256.Size]byte

// String returns the digest in hex.
func (g GridDigest) String() string { return fmt.Sprintf("%x", g[:]) }

// Plan enumerates the sweep's tasks in grid order and digests the
// grid. Every participant — worker, sequential reference, merge
// validation — derives its view of the sweep from this one function.
func Plan(fp trace.Fingerprint, cfgs []gpu.Config) ([]Task, GridDigest, error) {
	if len(cfgs) == 0 {
		return nil, GridDigest{}, fmt.Errorf("shard: empty config grid")
	}
	h := sha256.New()
	var buf [8]byte
	putU64(buf[:], uint64(len(cfgs)))
	h.Write(buf[:])
	tasks := make([]Task, len(cfgs))
	for i, cfg := range cfgs {
		cfgFp := cfg.Fingerprint()
		h.Write(cfgFp[:])
		tasks[i] = Task{Seq: i, Config: cfg, Key: sweep.PriceKey(fp, cfg)}
	}
	var g GridDigest
	h.Sum(g[:0])
	return tasks, g, nil
}

func putU64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}
