package shard

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sweep"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/tracetest"
)

// testProfile shrinks the suite's first game profile to unit-test
// scale; testWorkload memoizes its generation across the package.
func testProfile() synth.Profile {
	p := synth.SuiteProfiles()[0]
	p.Frames = 16
	p.MaterialsPerScene = 30
	p.SharedMaterials = 8
	p.Textures = 60
	p.VSPool = 6
	p.PSPool = 12
	return p
}

func testWorkload(t testing.TB, seed uint64) *trace.Workload {
	t.Helper()
	w, err := tracetest.CachedWorkload(testProfile(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testGrid(nCore, nMem int) []gpu.Config {
	core := make([]float64, nCore)
	for i := range core {
		core[i] = 0.5 + 0.25*float64(i)
	}
	mem := make([]float64, nMem)
	for i := range mem {
		mem[i] = 0.8 + 0.4*float64(i)
	}
	return sweep.Grid(gpu.BaseConfig(), core, mem)
}

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
	}{
		{"1/1", Spec{0, 1}},
		{"1/4", Spec{0, 4}},
		{"4/4", Spec{3, 4}},
		{" 3 / 8 ", Spec{2, 8}},
	} {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if rt, err := ParseSpec(got.String()); err != nil || rt != got {
			t.Fatalf("ParseSpec(String %q) = %+v, %v", got.String(), rt, err)
		}
	}
	for _, in := range []string{"", "3", "0/4", "5/4", "-1/4", "1/0", "1/-2", "a/4", "1/b", "1/2/3"} {
		if sp, err := ParseSpec(in); err == nil {
			t.Fatalf("ParseSpec(%q) = %+v, want error", in, sp)
		}
	}
}

func TestSpecOwnsPartitionsGrid(t *testing.T) {
	const n, grid = 4, 23
	seen := make([]int, grid)
	for i := 0; i < n; i++ {
		sp := Spec{Index: i, Count: n}
		for seq := 0; seq < grid; seq++ {
			if sp.Owns(seq) {
				seen[seq]++
			}
		}
	}
	for seq, c := range seen {
		if c != 1 {
			t.Fatalf("task %d owned by %d shards, want exactly 1", seq, c)
		}
	}
	// Round-robin: shard 1/4 owns 0, 4, 8, ...
	sp := Spec{Index: 0, Count: 4}
	if !sp.Owns(0) || sp.Owns(1) || !sp.Owns(4) {
		t.Fatal("ownership is not round-robin")
	}
}

func TestPlanGridOrderAndKeys(t *testing.T) {
	w := testWorkload(t, 7)
	fp := w.Fingerprint()
	cfgs := testGrid(3, 2)
	tasks, digest, err := Plan(fp, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != len(cfgs) {
		t.Fatalf("planned %d tasks for %d configs", len(tasks), len(cfgs))
	}
	for i, task := range tasks {
		if task.Seq != i {
			t.Fatalf("task %d has seq %d", i, task.Seq)
		}
		if task.Config != cfgs[i] {
			t.Fatalf("task %d config reordered", i)
		}
		if task.Key != sweep.PriceKey(fp, cfgs[i]) {
			t.Fatalf("task %d key diverges from sweep.PriceKey — shard and sequential would miss each other's cache entries", i)
		}
	}
	// Same inputs, same digest; reordered grid, different digest (order
	// is the fold order, so it is part of the sweep's identity).
	_, digest2, err := Plan(fp, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if digest != digest2 {
		t.Fatal("grid digest is not deterministic")
	}
	swapped := append([]gpu.Config(nil), cfgs...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	_, digest3, err := Plan(fp, swapped)
	if err != nil {
		t.Fatal(err)
	}
	if digest == digest3 {
		t.Fatal("grid digest ignores config order")
	}
	if len(digest.String()) != 64 || !strings.EqualFold(digest.String(), digest2.String()) {
		t.Fatalf("digest string %q malformed", digest.String())
	}
}

func TestPlanRejectsEmptyGrid(t *testing.T) {
	w := testWorkload(t, 7)
	if _, _, err := Plan(w.Fingerprint(), nil); err == nil {
		t.Fatal("Plan accepted an empty grid")
	}
}
