package shard

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// WorkerOptions configures one shard worker. The zero value of every
// field selects a safe default.
type WorkerOptions struct {
	// Cache is the shared result store workers coordinate through. A
	// disk-backed cache (Config.Dir set) is what makes the sharding
	// cross-process: entries and claims land in the shared directory.
	// Nil or memory-only degrades gracefully — the worker computes
	// everything it owns directly, which is correct but uncoordinated.
	Cache *cache.Cache

	// LeaseTTL bounds how long another worker's claim is believed
	// before it is treated as dead and taken over (default 30s). It
	// must exceed the worst-case pricing time of one config, or live
	// claims get stolen and work duplicates (results stay correct
	// regardless — duplicates are byte-identical by construction).
	LeaseTTL time.Duration

	// Poll is the wait between entry lookups while another worker
	// holds a claim (default 25ms).
	Poll time.Duration

	// Owner labels this worker's claims for diagnostics (default
	// "pid:<pid>").
	Owner string
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 25 * time.Millisecond
	}
	if o.Owner == "" {
		o.Owner = fmt.Sprintf("pid:%d", os.Getpid())
	}
	return o
}

// WorkerStats accounts one Run.
type WorkerStats struct {
	Owned      int // tasks this shard was responsible for
	Computed   int // ... priced by this worker under a claim
	CacheHits  int // ... resolved from the shared cache without pricing
	ClaimWaits int // poll cycles spent behind another worker's claim
}

// Worker executes one shard of a sweep. Construct with NewWorker; a
// Worker is single-use per Run but stateless between runs.
type Worker struct {
	opt WorkerOptions

	// hookAfterClaim, when set by tests in this package, runs after a
	// claim is acquired and before pricing; returning an error aborts
	// the run WITHOUT releasing the claim — the crash-injection point
	// for the determinism suite's kill-and-resume scenario.
	hookAfterClaim func(seq int) error
}

// NewWorker builds a worker.
func NewWorker(opt WorkerOptions) *Worker {
	return &Worker{opt: opt.withDefaults()}
}

// Run executes the shard: for every owned task in grid order, resolve
// the priced parent — from the shared cache if any worker already
// stored it, otherwise by claiming the key and pricing it — and emit
// the per-shard manifest. The manifest depends only on (workload,
// grid, spec): re-running a shard over any cache state, or racing it
// against an overlapping shard, yields byte-identical manifests.
func (wk *Worker) Run(ctx context.Context, w *trace.Workload, cfgs []gpu.Config, spec Spec) (*Manifest, WorkerStats, error) {
	var stats WorkerStats
	if err := spec.Validate(); err != nil {
		return nil, stats, err
	}
	ctx, sp := obs.StartSpan(ctx, "shard-worker")
	defer sp.End()

	fp := w.Fingerprint()
	tasks, grid, err := Plan(fp, cfgs)
	if err != nil {
		return nil, stats, err
	}
	// The base simulator validates the workload once; per-task sims
	// derive from it exactly like the sequential sweep's do.
	base, err := gpu.NewSimulator(cfgs[0], w)
	if err != nil {
		return nil, stats, err
	}
	cctx := cache.WithWorkload(ctx, wk.opt.Cache, fp)

	m := &Manifest{
		Version:  ManifestVersion,
		Workload: fp,
		Grid:     grid,
		GridSize: len(tasks),
		Shard:    spec,
	}
	for _, t := range tasks {
		if !spec.Owns(t.Seq) {
			continue
		}
		stats.Owned++
		priced, computed, err := wk.resolve(cctx, base, w, t, len(tasks), &stats)
		if err != nil {
			return nil, stats, err
		}
		if computed {
			stats.Computed++
		} else {
			stats.CacheHits++
		}
		m.Entries = append(m.Entries, Entry{
			Seq:          t.Seq,
			CoreClockGHz: t.Config.CoreClockGHz,
			MemClockGHz:  t.Config.MemClockGHz,
			ConfigFP:     t.Config.Fingerprint(),
			Key:          t.Key,
			Frames:       len(priced.FrameNs),
			FrameDigest:  frameDigest(priced.FrameNs),
			TotalNs:      priced.TotalNs,
			Totals:       priced.Totals,
		})
	}
	sp.AddItems(int64(stats.Owned))
	mtr := obs.RunFromContext(ctx).Metrics()
	mtr.Counter("shard.tasks_owned").Add(int64(stats.Owned))
	mtr.Counter("shard.tasks_computed").Add(int64(stats.Computed))
	mtr.Counter("shard.tasks_cache_hit").Add(int64(stats.CacheHits))
	mtr.Counter("shard.claim_waits").Add(int64(stats.ClaimWaits))
	return m, stats, nil
}

// resolve produces the priced parent for one task. Fast path: the
// entry is already in the shared cache (another shard, a previous
// attempt of this one, or a warm sequential run computed it). Slow
// path: claim the key, price it (PriceConfig stores through the cache)
// and release the claim — deferred, so cancellation and pricing errors
// release it too; only a crash leaves a claim behind, and the
// staleness sweep in cache.TryClaim reclaims those. Losing the claim
// race means polling for the winner's entry, re-running the staleness
// check each cycle.
func (wk *Worker) resolve(ctx context.Context, base *gpu.Simulator, w *trace.Workload, t Task, n int, stats *WorkerStats) (sweep.PricedParent, bool, error) {
	c := wk.opt.Cache
	for {
		if v, ok := cache.Lookup[sweep.PricedParent](ctx, c, t.Key); ok {
			return v, false, nil
		}
		if err := ctx.Err(); err != nil {
			return sweep.PricedParent{}, false, fmt.Errorf("shard: canceled at task %d/%d: %w", t.Seq+1, n, err)
		}
		state, holder := c.TryClaim(ctx, t.Key, wk.opt.Owner, wk.opt.LeaseTTL)
		if state == cache.ClaimAcquired {
			if wk.hookAfterClaim != nil {
				if err := wk.hookAfterClaim(t.Seq); err != nil {
					return sweep.PricedParent{}, false, err
				}
			}
			priced, err := func() (sweep.PricedParent, error) {
				defer c.ReleaseClaim(t.Key)
				_, p, err := sweep.PriceConfig(ctx, base, w, t.Config, t.Seq, n)
				return p, err
			}()
			if err != nil {
				return sweep.PricedParent{}, false, err
			}
			return priced, true, nil
		}
		stats.ClaimWaits++
		obs.RunFromContext(ctx).Logger().Debug("waiting on claim",
			"key", t.Key.String(), "holder", holder, "seq", t.Seq)
		select {
		case <-ctx.Done():
			return sweep.PricedParent{}, false, fmt.Errorf("shard: canceled waiting on claim for task %d/%d: %w", t.Seq+1, n, ctx.Err())
		case <-time.After(wk.opt.Poll):
		}
	}
}
