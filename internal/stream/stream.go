// Package stream is the one-pass, bounded-memory variant of workload
// subsetting: frames are consumed as they arrive (e.g. from a
// trace.StreamDecoder attached to a capture that never fits in
// memory), the phase table is maintained online, and only the frames
// that become phase representatives are ever clustered or retained.
//
// Memory high-water mark: one characterization interval of frames plus
// the subset itself — independent of capture length. The result is
// identical in structure to subset.Build's output; for a capture that
// fits in memory the two agree exactly (see the equivalence test).
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/phase"
	"repro/internal/subset"
	"repro/internal/trace"
	"repro/internal/traceerr"
)

// Options mirrors subset.Options.
type Options struct {
	Method subset.Method
	Phase  phase.Options

	// Lenient makes Push skip unusable frames (accounted in the
	// result's Diagnostics) instead of failing the run — pair it with a
	// lenient trace.StreamReader to survive damaged captures.
	Lenient bool

	// Obs attaches an observability run to RunContext: the drain
	// becomes a "stream-ingest" span and the frame/phase counts and
	// degradation accounting feed its metrics. Nil is a complete
	// no-op; the Result is identical either way.
	Obs *obs.Run
}

// DefaultOptions returns the batch pipeline's defaults.
func DefaultOptions() Options {
	o := subset.DefaultOptions()
	return Options{Method: o.Method, Phase: o.Phase}
}

// Result is the streamed subset plus corpus accounting.
type Result struct {
	Frames       []subset.Frame
	NumPhases    int
	ParentFrames int
	ParentDraws  int
	Timeline     string

	// Diagnostics accounts for everything skipped on the way here —
	// the reader's resyncs plus frames the subsetter itself dropped.
	// Zero on a clean strict run.
	Diagnostics traceerr.Diagnostics
}

// SizeRatio returns subset draws / parent draws.
func (r *Result) SizeRatio() float64 {
	if r.ParentDraws == 0 {
		return 0
	}
	n := 0
	for i := range r.Frames {
		n += len(r.Frames[i].Draws)
	}
	return float64(n) / float64(r.ParentDraws)
}

// EstimateParentNs reconstructs the parent total under the oracle.
func (r *Result) EstimateParentNs(o subset.CostOracle) float64 {
	var t float64
	for i := range r.Frames {
		t += r.Frames[i].PredictNs(o)
	}
	return t
}

// Subsetter consumes frames one at a time. Construct with New, feed
// with Push, and call Finish exactly once.
type Subsetter struct {
	shell *trace.Workload
	opt   Options
	fc    *subset.FrameClusterer

	buf        []trace.Frame // current interval, <= IntervalFrames
	frameIdx   int           // frames consumed so far
	draws      int
	sigToPhase map[phase.Signature]int
	phaseLen   []int  // parent frames per phase
	timeline   []byte // one rune per interval
	frames     []subset.Frame
	finished   bool
	diag       traceerr.Diagnostics
}

// New builds a streaming subsetter bound to the stream's shell
// workload (trace.StreamDecoder.Shell()).
func New(shell *trace.Workload, opt Options) (*Subsetter, error) {
	if err := opt.Phase.Validate(); err != nil {
		return nil, err
	}
	fc, err := subset.NewShellFrameClusterer(shell, opt.Method)
	if err != nil {
		return nil, err
	}
	return &Subsetter{
		shell:      shell,
		opt:        opt,
		fc:         fc,
		sigToPhase: map[phase.Signature]int{},
	}, nil
}

// Push consumes one frame. In lenient mode an unusable frame is
// skipped and accounted instead of failing the run.
func (s *Subsetter) Push(f trace.Frame) error {
	if s.finished {
		return fmt.Errorf("stream: Push after Finish")
	}
	if len(f.Draws) == 0 {
		if s.opt.Lenient {
			s.diag.FramesSkipped++
			return nil
		}
		return fmt.Errorf("stream: frame %d has no draws: %w", s.frameIdx, traceerr.ErrInvalidFrame)
	}
	s.buf = append(s.buf, f)
	s.frameIdx++
	s.draws += len(f.Draws)
	if len(s.buf) == s.opt.Phase.IntervalFrames {
		return s.flush()
	}
	return nil
}

// flush characterizes the buffered interval and retains a
// representative frame if its phase is new.
func (s *Subsetter) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	v, err := phase.VectorOfFrames(s.shell, s.buf)
	if err != nil {
		return err
	}
	sig := v.Signature(s.opt.Phase)
	id, seen := s.sigToPhase[sig]
	if !seen {
		id = len(s.sigToPhase)
		s.sigToPhase[sig] = id
		s.phaseLen = append(s.phaseLen, 0)

		mid := len(s.buf) / 2
		globalIdx := s.frameIdx - len(s.buf) + mid
		cf, err := s.fc.ClusterFrame(&s.buf[mid], globalIdx)
		if err != nil {
			return err
		}
		sf := subset.Frame{
			ParentFrame: globalIdx,
			Phase:       id,
			Draws:       make([]trace.DrawCall, len(cf.RepDraws)),
			Weights:     cf.Weights,
		}
		for c, di := range cf.RepDraws {
			sf.Draws[c] = s.buf[mid].Draws[di]
		}
		s.frames = append(s.frames, sf)
	}
	s.phaseLen[id] += len(s.buf)
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	s.timeline = append(s.timeline, alphabet[id%len(alphabet)])
	s.buf = s.buf[:0]
	return nil
}

// Finish flushes any partial interval, assigns phase scales and
// returns the subset. The subsetter is unusable afterwards.
func (s *Subsetter) Finish() (*Result, error) {
	if s.finished {
		return nil, fmt.Errorf("stream: Finish called twice")
	}
	s.finished = true
	if err := s.flush(); err != nil {
		return nil, err
	}
	if s.frameIdx == 0 {
		return nil, fmt.Errorf("stream: no frames pushed")
	}
	for i := range s.frames {
		s.frames[i].PhaseScale = float64(s.phaseLen[s.frames[i].Phase])
	}
	return &Result{
		Frames:       s.frames,
		NumPhases:    len(s.sigToPhase),
		ParentFrames: s.frameIdx,
		ParentDraws:  s.draws,
		Timeline:     string(s.timeline),
		Diagnostics:  s.diag,
	}, nil
}

// FrameSource is what RunContext drains: both trace.StreamDecoder
// (strict) and trace.StreamReader (strict or lenient) satisfy it.
type FrameSource interface {
	Shell() *trace.Workload
	NextFrame() (trace.Frame, error)
}

// diagnoser lets RunContext collect degradation accounting from
// sources that keep it (trace.StreamReader).
type diagnoser interface {
	Diagnostics() traceerr.Diagnostics
}

// Run drains a frame source through a subsetter — the convenience
// entry point for file-backed captures.
func Run(src FrameSource, opt Options) (*Result, error) {
	return RunContext(context.Background(), src, opt)
}

// RunContext is Run with cancellation: the drain loop stops with
// ctx.Err() as soon as the context is done, so callers can bound
// unattended ingestion with a deadline or Ctrl-C.
func RunContext(ctx context.Context, src FrameSource, opt Options) (*Result, error) {
	if opt.Obs != nil && obs.RunFromContext(ctx) == nil {
		ctx = opt.Obs.Context(ctx)
	}
	run := obs.RunFromContext(ctx)
	_, sp := obs.StartSpan(ctx, "stream-ingest")
	defer sp.End()

	s, err := New(src.Shell(), opt)
	if err != nil {
		return nil, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("stream: ingestion canceled after %d frames: %w", s.frameIdx, err)
		}
		f, err := src.NextFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := s.Push(f); err != nil {
			return nil, err
		}
		sp.AddItems(1)
	}
	res, err := s.Finish()
	if err != nil {
		return nil, err
	}
	if d, ok := src.(diagnoser); ok {
		res.Diagnostics.Add(d.Diagnostics())
	}
	if run != nil {
		reg := run.Metrics()
		reg.Counter("stream.frames").Add(int64(res.ParentFrames))
		reg.Counter("stream.draws").Add(int64(res.ParentDraws))
		reg.Counter("stream.phases").Add(int64(res.NumPhases))
		reg.Counter("subset.frames").Add(int64(len(res.Frames)))
		run.RecordDiagnostics(res.Diagnostics.Map())
		if res.Diagnostics.Any() {
			run.Logger().Warn("lenient ingestion degraded the capture", "diagnostics", res.Diagnostics.String())
		}
	}
	return res, nil
}
