package stream

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/trace"
	"repro/internal/traceerr"
)

// encodeV2 writes w in stream format, returning the bytes and each
// frame record's start offset.
func encodeV2(t *testing.T, w *trace.Workload) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	enc, err := trace.NewStreamEncoder(&buf, trace.HeaderOf(w))
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]int, 0, len(w.Frames))
	for i := range w.Frames {
		starts = append(starts, buf.Len())
		if err := enc.WriteFrame(&w.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), starts
}

// TestLenientCorruptionMatchesCleanRun is the headline resilience
// guarantee: corrupt exactly one frame record, ingest leniently, and
// the subset must equal a clean run over the same surviving frames —
// with Diagnostics reporting exactly the one skipped record.
func TestLenientCorruptionMatchesCleanRun(t *testing.T) {
	w := streamGame(t)
	const victim = 17
	data, starts := encodeV2(t, w)
	corrupt := append([]byte{}, data...)
	corrupt[starts[victim]+25] ^= 0x80 // payload bit rot in frame 17's record

	r, err := trace.NewStreamReader(bytes.NewReader(corrupt), trace.ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Lenient = true
	got, err := RunContext(context.Background(), r, opt)
	if err != nil {
		t.Fatalf("lenient run failed: %v", err)
	}

	d := got.Diagnostics
	if d.RecordsResynced != 1 || d.FramesSkipped != 0 || d.DrawsDropped != 0 {
		t.Errorf("diagnostics %+v, want exactly 1 record resynced", d)
	}
	if d.BytesDiscarded == 0 {
		t.Error("discarded bytes not accounted")
	}
	if got.ParentFrames != w.NumFrames()-1 {
		t.Fatalf("ingested %d frames, want %d", got.ParentFrames, w.NumFrames()-1)
	}

	// The clean reference: the same workload with the victim frame
	// removed, run strictly.
	clean := *w
	clean.Frames = append(append([]trace.Frame{}, w.Frames[:victim]...), w.Frames[victim+1:]...)
	s, err := New(shellOf(t, w), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Frames {
		if err := s.Push(clean.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	want, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if got.NumPhases != want.NumPhases || got.Timeline != want.Timeline {
		t.Errorf("phase structure diverged: %d/%s vs %d/%s",
			got.NumPhases, got.Timeline, want.NumPhases, want.Timeline)
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("subset sizes diverged: %d vs %d", len(got.Frames), len(want.Frames))
	}
	for i := range got.Frames {
		if got.Frames[i].ParentFrame != want.Frames[i].ParentFrame ||
			got.Frames[i].PhaseScale != want.Frames[i].PhaseScale {
			t.Errorf("subset frame %d diverged: parent %d scale %v vs parent %d scale %v",
				i, got.Frames[i].ParentFrame, got.Frames[i].PhaseScale,
				want.Frames[i].ParentFrame, want.Frames[i].PhaseScale)
		}
	}
	// Subset metrics on the surviving frames must match the clean run.
	sim, err := gpu.NewSimulator(gpu.BaseConfig(), &clean)
	if err != nil {
		t.Fatal(err)
	}
	a, b := got.EstimateParentNs(sim), want.EstimateParentNs(sim)
	if math.Abs(a-b) > 1e-9*b {
		t.Errorf("parent estimates diverged: %v vs %v", a, b)
	}
}

// Strict mode must instead fail with ErrCorruptRecord naming the record.
func TestStrictCorruptionFailsFast(t *testing.T) {
	w := streamGame(t)
	data, starts := encodeV2(t, w)
	corrupt := append([]byte{}, data...)
	corrupt[starts[17]+25] ^= 0x80

	dec, err := trace.NewStreamDecoder(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(dec, DefaultOptions())
	if !errors.Is(err, traceerr.ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
	var re *traceerr.RecordError
	if !errors.As(err, &re) || re.Record != 18 { // header is record 0
		t.Errorf("corrupt record index = %+v, want record 18", re)
	}
}

func TestRunContextCancellation(t *testing.T) {
	w := streamGame(t)
	var buf bytes.Buffer
	if err := trace.EncodeStream(&buf, w); err != nil {
		t.Fatal(err)
	}
	dec, err := trace.NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, dec, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	dec2, err := trace.NewStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err == nil {
		ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel2()
		if _, err := RunContext(ctx2, dec2, DefaultOptions()); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	}
}

func TestLenientPushSkipsEmptyFrames(t *testing.T) {
	w := streamGame(t)
	opt := DefaultOptions()
	opt.Lenient = true
	s, err := New(shellOf(t, w), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(trace.Frame{}); err != nil {
		t.Fatalf("lenient Push rejected empty frame: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Push(w.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.ParentFrames != 8 {
		t.Errorf("ParentFrames = %d, want 8 (empty frame skipped)", res.ParentFrames)
	}
	if res.Diagnostics.FramesSkipped != 1 {
		t.Errorf("FramesSkipped = %d, want 1", res.Diagnostics.FramesSkipped)
	}
}
