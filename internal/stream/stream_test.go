package stream

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/subset"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/tracetest"
)

func streamGame(t *testing.T) *trace.Workload {
	t.Helper()
	p := synth.Bioshock1Profile()
	p.Name = "streamtest"
	p.Frames = 64
	p.MaterialsPerScene = 40
	p.SharedMaterials = 8
	p.Textures = 80
	p.VSPool = 6
	p.PSPool = 16
	w, err := tracetest.CachedWorkload(p, 61)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// shellOf strips frames, as a StreamDecoder would present the workload.
func shellOf(t *testing.T, w *trace.Workload) *trace.Workload {
	t.Helper()
	shell, err := trace.HeaderOf(w).Shell()
	if err != nil {
		t.Fatal(err)
	}
	return shell
}

func TestStreamMatchesBatchBuild(t *testing.T) {
	w := streamGame(t)

	batch, err := subset.Build(w, subset.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(shellOf(t, w), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Frames {
		if err := s.Push(w.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if res.NumPhases != batch.Detection.NumPhases {
		t.Fatalf("phases: stream %d, batch %d", res.NumPhases, batch.Detection.NumPhases)
	}
	if len(res.Frames) != len(batch.Frames) {
		t.Fatalf("frames: stream %d, batch %d", len(res.Frames), len(batch.Frames))
	}
	if res.ParentFrames != w.NumFrames() || res.ParentDraws != w.NumDraws() {
		t.Errorf("accounting: %d frames / %d draws", res.ParentFrames, res.ParentDraws)
	}
	sim, err := gpu.NewSimulator(gpu.BaseConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	a := res.EstimateParentNs(sim)
	b := batch.EstimateParentNs(sim)
	if math.Abs(a-b)/b > 1e-9 {
		t.Errorf("estimates differ: stream %v, batch %v", a, b)
	}
	for i := range res.Frames {
		if res.Frames[i].ParentFrame != batch.Frames[i].ParentFrame {
			t.Errorf("frame %d: parent %d vs %d", i, res.Frames[i].ParentFrame, batch.Frames[i].ParentFrame)
		}
		if res.Frames[i].PhaseScale != batch.Frames[i].PhaseScale {
			t.Errorf("frame %d: scale %v vs %v", i, res.Frames[i].PhaseScale, batch.Frames[i].PhaseScale)
		}
	}
}

func TestStreamRunFromDecoder(t *testing.T) {
	w := streamGame(t)
	var buf bytes.Buffer
	if err := trace.EncodeStream(&buf, w); err != nil {
		t.Fatal(err)
	}
	dec, err := trace.NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(dec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPhases < 3 {
		t.Errorf("phases = %d", res.NumPhases)
	}
	if res.SizeRatio() <= 0 || res.SizeRatio() > 0.2 {
		t.Errorf("size ratio = %v", res.SizeRatio())
	}
	if len(res.Timeline) == 0 {
		t.Error("empty timeline")
	}
}

func TestStreamPartialLastInterval(t *testing.T) {
	w := streamGame(t)
	s, err := New(shellOf(t, w), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Push 10 frames: two full 4-frame intervals + a 2-frame tail.
	for i := 0; i < 10; i++ {
		if err := s.Push(w.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.ParentFrames != 10 {
		t.Errorf("parent frames = %d", res.ParentFrames)
	}
	// Phase scales must account for every frame.
	var total float64
	scaleByPhase := map[int]float64{}
	for i := range res.Frames {
		scaleByPhase[res.Frames[i].Phase] = res.Frames[i].PhaseScale
	}
	for _, sc := range scaleByPhase {
		total += sc
	}
	if int(total) != 10 {
		t.Errorf("phase scales cover %v of 10 frames", total)
	}
	if len(res.Timeline) != 3 {
		t.Errorf("timeline %q, want 3 intervals", res.Timeline)
	}
}

func TestStreamLifecycleErrors(t *testing.T) {
	w := streamGame(t)
	s, err := New(shellOf(t, w), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(trace.Frame{}); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := s.Finish(); err == nil {
		t.Error("Finish with no frames accepted")
	}
	if _, err := s.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
	if err := s.Push(w.Frames[0]); err == nil {
		t.Error("Push after Finish accepted")
	}
}

func TestStreamOptionValidation(t *testing.T) {
	w := streamGame(t)
	bad := DefaultOptions()
	bad.Phase.IntervalFrames = 0
	if _, err := New(shellOf(t, w), bad); err == nil {
		t.Error("bad phase options accepted")
	}
	bad = DefaultOptions()
	bad.Method.Threshold = 0
	if _, err := New(shellOf(t, w), bad); err == nil {
		t.Error("bad method accepted")
	}
}
