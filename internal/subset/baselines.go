package subset

import (
	"fmt"

	"repro/internal/dcmath"
	"repro/internal/trace"
)

// FrameSample is a generic weighted draw sample of one frame — the
// form shared by the clustering representative set and the baseline
// samplers it is compared against (E9).
type FrameSample struct {
	Draws   []int     // draw indices within the frame
	Weights []float64 // per draw: how many parent draws it stands for
}

// PredictNs reconstructs the frame cost from the sample.
func (fs *FrameSample) PredictNs(o CostOracle, f *trace.Frame) float64 {
	var t float64
	for i, di := range fs.Draws {
		t += o.DrawNs(&f.Draws[di]) * fs.Weights[i]
	}
	return t
}

// Sample converts a ClusteredFrame to the generic form.
func (cf *ClusteredFrame) Sample() FrameSample {
	return FrameSample{Draws: cf.RepDraws, Weights: cf.Weights}
}

// RandomSample picks k distinct draws uniformly at random; every
// sampled draw stands for n/k parent draws. This is the paper-standard
// naive baseline at equal simulation budget.
func RandomSample(f *trace.Frame, k int, rng *dcmath.RNG) (FrameSample, error) {
	n := len(f.Draws)
	if err := checkBudget(n, k); err != nil {
		return FrameSample{}, err
	}
	perm := rng.Perm(n)
	return evenSample(perm[:k], n), nil
}

// UniformSample picks every (n/k)-th draw — systematic sampling in
// submission order.
func UniformSample(f *trace.Frame, k int) (FrameSample, error) {
	n := len(f.Draws)
	if err := checkBudget(n, k); err != nil {
		return FrameSample{}, err
	}
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = i * n / k
	}
	return evenSample(idx, n), nil
}

// FirstNSample keeps the first k draws — the "simulate the start of
// the frame" strawman.
func FirstNSample(f *trace.Frame, k int) (FrameSample, error) {
	n := len(f.Draws)
	if err := checkBudget(n, k); err != nil {
		return FrameSample{}, err
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return evenSample(idx, n), nil
}

func checkBudget(n, k int) error {
	if k <= 0 || k > n {
		return fmt.Errorf("subset: sample budget %d outside [1, %d]", k, n)
	}
	return nil
}

func evenSample(idx []int, n int) FrameSample {
	w := float64(n) / float64(len(idx))
	fs := FrameSample{Draws: idx, Weights: make([]float64, len(idx))}
	for i := range fs.Weights {
		fs.Weights[i] = w
	}
	return fs
}
