package subset

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/phase"
	"repro/internal/trace"
)

// Frame is one selected frame of a subset: the representative draws of
// its clusters, their weights, and the scale factor that maps the
// frame's cost to the share of the parent workload it stands for.
type Frame struct {
	// ParentFrame is the frame's index in the parent workload.
	ParentFrame int
	// Phase is the phase this frame represents.
	Phase int
	// Draws are copies of the representative draw calls.
	Draws []trace.DrawCall
	// Weights holds, per draw, the size of the cluster it represents.
	Weights []float64
	// PhaseScale is how many parent frames this one frame stands for
	// (phase frame count / representative frames of the phase).
	PhaseScale float64
}

// PredictNs reconstructs the cost of all parent frames this subset
// frame represents.
func (sf *Frame) PredictNs(o CostOracle) float64 {
	var t float64
	for i := range sf.Draws {
		t += o.DrawNs(&sf.Draws[i]) * sf.Weights[i]
	}
	return t * sf.PhaseScale
}

// SimDraws returns the number of draws that must be simulated for this
// frame (the subset's cost unit).
func (sf *Frame) SimDraws() int { return len(sf.Draws) }

// Subset is a representative subset of a parent workload. It shares
// the parent's resource tables (shaders, textures, render targets):
// only the draw population shrinks.
type Subset struct {
	Parent    *trace.Workload
	Detection phase.Detection
	Frames    []Frame
	// ParentDraws caches the parent's total draw count.
	ParentDraws int
}

// Options configures subset construction.
type Options struct {
	Method Method
	Phase  phase.Options

	// FramesPerPhase is how many frames of each phase's representative
	// interval the subset keeps (0 or 1 = one, the default). Keeping
	// more frames grows the subset proportionally but averages out
	// frame-to-frame jitter in the reconstruction; the trade is
	// exercised in subset tests.
	FramesPerPhase int

	// Workers bounds the goroutines used for phase characterization and
	// per-frame clustering during Build (<= 0 selects GOMAXPROCS, 1 is
	// fully sequential). The built subset is bit-identical at any
	// worker count; Workers only changes wall-clock time.
	Workers int

	// Obs attaches an observability run for callers that drive Build
	// directly (core threads its own). Nil is a complete no-op, and
	// spans/metrics never alter the built subset.
	Obs *obs.Run

	// Cache attaches a content-addressed result cache: phase shader
	// vectors, per-frame feature matrices and per-frame clusterings
	// are then served by (workload fingerprint, options, algorithm
	// version) instead of recomputed. Nil disables caching. Caching
	// never changes the built subset — warm and cold builds are
	// byte-identical, an invariant the golden tests assert.
	Cache *cache.Cache
}

// DefaultOptions returns the experiment configuration.
func DefaultOptions() Options {
	return Options{Method: DefaultMethod(), Phase: phase.DefaultOptions()}
}

// Build constructs a subset: detect phases, keep FramesPerPhase frames
// of each phase's representative interval (the middle one by default),
// cluster them, and keep only cluster representatives with weights.
func Build(w *trace.Workload, opt Options) (*Subset, error) {
	return BuildContext(context.Background(), w, opt)
}

// BuildContext is Build with cancellation. Phase characterization and
// the clustering of the kept frames fan out across opt.Workers
// goroutines; the frame selection and assembly stay sequential, so the
// subset is bit-identical at any worker count.
func BuildContext(ctx context.Context, w *trace.Workload, opt Options) (*Subset, error) {
	if opt.FramesPerPhase < 0 {
		return nil, fmt.Errorf("subset: FramesPerPhase %d < 0", opt.FramesPerPhase)
	}
	if opt.Obs != nil && obs.RunFromContext(ctx) == nil {
		ctx = opt.Obs.Context(ctx)
	}
	if opt.Cache != nil {
		if _, _, bound := cache.ForWorkload(ctx); !bound {
			_, fsp := obs.StartSpan(ctx, "fingerprint")
			fp := w.Fingerprint()
			fsp.End()
			ctx = cache.WithWorkload(ctx, opt.Cache, fp)
		}
	}
	ctx, sp := obs.StartSpan(ctx, "subset-build")
	defer sp.End()
	perPhase := opt.FramesPerPhase
	if perPhase == 0 {
		perPhase = 1
	}
	det, err := phase.DetectContext(ctx, w, opt.Phase, opt.Workers)
	if err != nil {
		return nil, err
	}
	fc, err := NewFrameClusterer(w, opt.Method)
	if err != nil {
		return nil, err
	}
	phaseFrames := make([]int, det.NumPhases) // parent frames per phase
	for _, iv := range det.Intervals {
		phaseFrames[iv.Phase] += iv.End - iv.Start
	}
	s := &Subset{Parent: w, Detection: det, ParentDraws: w.NumDraws()}

	// Select the kept frames sequentially, cluster them in parallel,
	// then assemble in selection order.
	var keep []int
	var meta []Frame // Draws left nil until clustering lands
	for p, ii := range det.Representatives {
		iv := det.Intervals[ii]
		for _, fi := range pickFrames(iv.Start, iv.End, perPhase) {
			keep = append(keep, fi)
			meta = append(meta, Frame{
				ParentFrame: fi,
				Phase:       p,
				// Each kept frame stands for an equal share of the
				// phase's parent frames.
				PhaseScale: float64(phaseFrames[p]) / float64(minInt(perPhase, iv.End-iv.Start)),
			})
		}
	}
	cctx, csp := obs.StartSpan(ctx, "cluster-frames")
	csp.AddItems(int64(len(keep)))
	cfs, err := fc.ClusterFrames(cctx, w.Frames, keep, opt.Workers)
	csp.End()
	if err != nil {
		return nil, err
	}
	for i, cf := range cfs {
		sf := meta[i]
		fi := sf.ParentFrame
		sf.Weights = cf.Weights
		sf.Draws = make([]trace.DrawCall, len(cf.RepDraws))
		for c, di := range cf.RepDraws {
			sf.Draws[c] = w.Frames[fi].Draws[di]
		}
		s.Frames = append(s.Frames, sf)
	}
	sp.AddItems(int64(len(s.Frames)))
	return s, nil
}

// pickFrames returns up to n frame indices spread evenly across
// [start, end), centered (the single-frame case picks the middle).
func pickFrames(start, end, n int) []int {
	span := end - start
	if n > span {
		n = span
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		// Midpoints of n equal strips.
		out[i] = start + (2*i+1)*span/(2*n)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NumDraws returns the subset's total simulated draw count.
func (s *Subset) NumDraws() int {
	n := 0
	for i := range s.Frames {
		n += s.Frames[i].SimDraws()
	}
	return n
}

// SizeRatio returns subset draws / parent draws — the paper's
// "less than one percent of parent workload" metric.
func (s *Subset) SizeRatio() float64 {
	if s.ParentDraws == 0 {
		return 0
	}
	return float64(s.NumDraws()) / float64(s.ParentDraws)
}

// EstimateParentNs reconstructs the parent workload's total cost from
// the subset under the given oracle. This is the quantity whose
// scaling behaviour must track the parent's across architecture
// configurations.
func (s *Subset) EstimateParentNs(o CostOracle) float64 {
	var t float64
	for i := range s.Frames {
		t += s.Frames[i].PredictNs(o)
	}
	return t
}

// TotalsOracle decomposes a draw's cost into the components an energy
// model needs. *gpu.Simulator satisfies it.
type TotalsOracle interface {
	DrawTotals(d *trace.DrawCall) (totalNs, computeNs, memoryNs, trafficBytes float64)
}

// EstimateParentTotals reconstructs the parent's aggregate wall time,
// core-busy time, memory-busy time and DRAM traffic from the subset —
// the inputs to energy-aware pathfinding (E16).
func (s *Subset) EstimateParentTotals(o TotalsOracle) (totalNs, computeNs, memoryNs, trafficBytes float64) {
	for i := range s.Frames {
		sf := &s.Frames[i]
		for di := range sf.Draws {
			tn, cn, mn, tb := o.DrawTotals(&sf.Draws[di])
			w := sf.Weights[di] * sf.PhaseScale
			totalNs += tn * w
			computeNs += cn * w
			memoryNs += mn * w
			trafficBytes += tb * w
		}
	}
	return totalNs, computeNs, memoryNs, trafficBytes
}

// Validate checks structural invariants of the subset.
func (s *Subset) Validate() error {
	if s.Parent == nil {
		return fmt.Errorf("subset: nil parent")
	}
	if len(s.Frames) == 0 {
		return fmt.Errorf("subset: no frames")
	}
	covered := make([]bool, s.Detection.NumPhases)
	for i := range s.Frames {
		p := s.Frames[i].Phase
		if p < 0 || p >= s.Detection.NumPhases {
			return fmt.Errorf("subset: frame %d has phase %d of %d", i, p, s.Detection.NumPhases)
		}
		covered[p] = true
	}
	for p, ok := range covered {
		if !ok {
			return fmt.Errorf("subset: phase %d has no representative frame", p)
		}
	}
	var scaleSum float64
	for i := range s.Frames {
		sf := &s.Frames[i]
		if sf.ParentFrame < 0 || sf.ParentFrame >= len(s.Parent.Frames) {
			return fmt.Errorf("subset: frame %d references parent frame %d", i, sf.ParentFrame)
		}
		if len(sf.Draws) == 0 {
			return fmt.Errorf("subset: frame %d has no draws", i)
		}
		if len(sf.Draws) != len(sf.Weights) {
			return fmt.Errorf("subset: frame %d draws/weights mismatch", i)
		}
		for _, wgt := range sf.Weights {
			if wgt < 1 {
				return fmt.Errorf("subset: frame %d has weight %v < 1", i, wgt)
			}
		}
		if sf.PhaseScale < 1 {
			return fmt.Errorf("subset: frame %d phase scale %v < 1", i, sf.PhaseScale)
		}
		scaleSum += sf.PhaseScale
	}
	if math.Abs(scaleSum-float64(len(s.Parent.Frames))) > 1e-6 {
		return fmt.Errorf("subset: phase scales sum to %v, parent has %d frames", scaleSum, len(s.Parent.Frames))
	}
	return nil
}
