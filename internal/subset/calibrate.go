package subset

import (
	"fmt"

	"repro/internal/trace"
)

// CalibrateThreshold finds the leader-clustering threshold whose
// average clustering efficiency over sampled frames lands within tol
// of target, by bisection. This automates picking the operating point
// on the error/efficiency curve (E5) for a new workload, instead of
// hand-tuning: efficiency is monotone non-decreasing in the threshold,
// which makes bisection sound.
//
// frameStride controls the evaluation sample (1 = every frame). The
// returned method is m with its Threshold replaced.
func CalibrateThreshold(w *trace.Workload, m Method, target, tol float64, frameStride int) (Method, error) {
	if m.Algo != AlgoLeader {
		return Method{}, fmt.Errorf("subset: calibration requires the leader algorithm, got %v", m.Algo)
	}
	if target <= 0 || target >= 1 {
		return Method{}, fmt.Errorf("subset: target efficiency %v outside (0, 1)", target)
	}
	if tol <= 0 {
		return Method{}, fmt.Errorf("subset: tolerance %v <= 0", tol)
	}
	if frameStride <= 0 {
		return Method{}, fmt.Errorf("subset: frame stride %d <= 0", frameStride)
	}

	eff := func(th float64) (float64, error) {
		mm := m
		mm.Threshold = th
		fc, err := NewFrameClusterer(w, mm)
		if err != nil {
			return 0, err
		}
		var sum float64
		n := 0
		for fi := 0; fi < len(w.Frames); fi += frameStride {
			cf, err := fc.ClusterFrame(&w.Frames[fi], fi)
			if err != nil {
				return 0, err
			}
			sum += cf.Result.Efficiency()
			n++
		}
		return sum / float64(n), nil
	}

	lo, hi := 0.01, 16.0
	effHi, err := eff(hi)
	if err != nil {
		return Method{}, err
	}
	if effHi < target {
		return Method{}, fmt.Errorf("subset: target efficiency %.3f unreachable (max %.3f at threshold %.1f)", target, effHi, hi)
	}
	effLo, err := eff(lo)
	if err != nil {
		return Method{}, err
	}
	if effLo >= target {
		// Already above target at the minimum threshold; the workload
		// is more redundant than the target asks for.
		m.Threshold = lo
		return m, nil
	}
	for iter := 0; iter < 24; iter++ {
		mid := (lo + hi) / 2
		e, err := eff(mid)
		if err != nil {
			return Method{}, err
		}
		if e >= target-tol && e <= target+tol {
			m.Threshold = mid
			return m, nil
		}
		if e < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Converged in threshold without hitting the tolerance band
	// (efficiency steps discretely with cluster counts); return the
	// upper bracket, which is guaranteed >= target side.
	m.Threshold = hi
	return m, nil
}
