package subset

import (
	"math"
	"testing"
)

func calibratedEff(t *testing.T, m Method) float64 {
	t.Helper()
	w := testGame(t)
	fc, err := NewFrameClusterer(w, m)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for fi := 0; fi < len(w.Frames); fi += 8 {
		cf, err := fc.ClusterFrame(&w.Frames[fi], fi)
		if err != nil {
			t.Fatal(err)
		}
		sum += cf.Result.Efficiency()
		n++
	}
	return sum / float64(n)
}

func TestCalibrateThresholdHitsTarget(t *testing.T) {
	w := testGame(t)
	const target = 0.60
	m, err := CalibrateThreshold(w, DefaultMethod(), target, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := calibratedEff(t, m)
	if math.Abs(got-target) > 0.03 {
		t.Errorf("calibrated efficiency = %.3f at threshold %.3f, want ~%.2f", got, m.Threshold, target)
	}
}

func TestCalibrateThresholdUnreachable(t *testing.T) {
	w := testGame(t)
	if _, err := CalibrateThreshold(w, DefaultMethod(), 0.999, 0.0001, 8); err == nil {
		t.Error("absurd target accepted")
	}
}

func TestCalibrateThresholdLowTarget(t *testing.T) {
	// A target below the minimum achievable efficiency returns the
	// minimum threshold rather than failing.
	w := testGame(t)
	m, err := CalibrateThreshold(w, DefaultMethod(), 0.01, 0.005, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Threshold > 0.02 {
		t.Errorf("low target threshold = %v, want the floor", m.Threshold)
	}
}

func TestCalibrateThresholdValidation(t *testing.T) {
	w := testGame(t)
	km := DefaultMethod()
	km.Algo = AlgoKMeans
	km.K = 10
	if _, err := CalibrateThreshold(w, km, 0.6, 0.01, 8); err == nil {
		t.Error("non-leader method accepted")
	}
	if _, err := CalibrateThreshold(w, DefaultMethod(), 0, 0.01, 8); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := CalibrateThreshold(w, DefaultMethod(), 0.6, 0, 8); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := CalibrateThreshold(w, DefaultMethod(), 0.6, 0.01, 0); err == nil {
		t.Error("zero stride accepted")
	}
}
