// Package subset builds representative workload subsets: the paper's
// deliverable. It combines per-frame draw-call clustering (keep one
// representative draw per cluster, weighted by cluster size) with
// phase detection (keep one representative frame per phase, weighted
// by phase coverage), and reconstructs parent-workload costs from the
// tiny subset.
package subset

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/dcmath"
	"repro/internal/features"
	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// ClusterVersion versions the per-frame clustering computation —
// normalizers, PCA, the clustering algorithms and representative
// selection. The result cache mixes it into every cached
// ClusteredFrame's key; bump it with any change that can move an
// assignment, medoid or weight.
//
// v2: Method gained Mode and BatchSize (hot-path execution strategy).
const ClusterVersion = 2

// CostOracle prices a draw call in nanoseconds. *gpu.Simulator
// satisfies it; tests substitute analytical oracles.
type CostOracle interface {
	DrawNs(d *trace.DrawCall) float64
}

// Algo selects the clustering algorithm.
type Algo uint8

// Available clustering algorithms.
const (
	AlgoLeader Algo = iota
	AlgoKMeans
	AlgoAgglomerative
)

// String returns the algorithm name.
func (a Algo) String() string {
	switch a {
	case AlgoLeader:
		return "leader"
	case AlgoKMeans:
		return "kmeans"
	case AlgoAgglomerative:
		return "agglomerative"
	default:
		return fmt.Sprintf("algo(%d)", uint8(a))
	}
}

// Method configures per-frame clustering.
type Method struct {
	Algo Algo

	// Threshold is the grouping distance for leader and agglomerative
	// clustering, in normalized feature space.
	Threshold float64

	// K is the cluster count for k-means. If 0, K defaults to the
	// cluster count leader clustering would produce at Threshold
	// (useful for like-for-like algorithm comparisons).
	K int

	// Seed drives k-means initialization.
	Seed uint64

	// MaxIter bounds k-means iterations.
	MaxIter int

	// Normalizer names the feature scaling: "zscore" (default),
	// "minmax" or "none". Fitted per frame.
	Normalizer string

	// FeatureGroups restricts clustering to the named feature groups
	// (nil = all groups). Used by the feature-ablation experiment.
	FeatureGroups []string

	// PCAComponents, when positive, projects the (normalized) feature
	// matrix onto its top principal components before clustering.
	// Dimensionality reduction trades a little cluster purity for
	// faster distance computation; the E13 ablation quantifies the
	// trade.
	PCAComponents int

	// Mode selects the hot-path execution strategy: exact (default),
	// bucketed, sampled or streaming. Non-exact modes are approximate;
	// see the Mode constants for the contracts each one keeps.
	Mode Mode

	// BatchSize is the per-iteration sample size for ModeSampled
	// (mini-batch k-means). 0 selects DefaultBatchSize.
	BatchSize int
}

// DefaultBatchSize is the mini-batch size ModeSampled uses when
// Method.BatchSize is 0. Sculley's web-scale k-means paper found
// quality saturates well below 1000; 256 keeps per-iteration work
// constant-sized against multi-thousand-draw frames.
const DefaultBatchSize = 256

// DefaultMethod returns the configuration the experiments use: leader
// clustering at threshold 0.5 over z-scored features — the operating
// point on the E5 error/efficiency curve that reproduces the paper's
// 65.8% average clustering efficiency at ~1% prediction error.
func DefaultMethod() Method {
	return Method{
		Algo:       AlgoLeader,
		Threshold:  0.5,
		MaxIter:    50,
		Normalizer: "zscore",
	}
}

func (m Method) validate() error {
	switch m.Algo {
	case AlgoLeader, AlgoAgglomerative:
		if m.Threshold <= 0 {
			return fmt.Errorf("subset: %v threshold %v <= 0", m.Algo, m.Threshold)
		}
	case AlgoKMeans:
		if m.K < 0 {
			return fmt.Errorf("subset: kmeans K %d < 0", m.K)
		}
		if m.K == 0 && m.Threshold <= 0 {
			return fmt.Errorf("subset: kmeans with K=0 needs a positive threshold to derive K")
		}
		if m.MaxIter <= 0 {
			return fmt.Errorf("subset: kmeans maxIter %d <= 0", m.MaxIter)
		}
	default:
		return fmt.Errorf("subset: unknown algorithm %v", m.Algo)
	}
	switch m.Normalizer {
	case "", "zscore", "minmax", "none":
	default:
		return fmt.Errorf("subset: unknown normalizer %q", m.Normalizer)
	}
	if m.PCAComponents < 0 {
		return fmt.Errorf("subset: PCA components %d < 0", m.PCAComponents)
	}
	if m.BatchSize < 0 {
		return fmt.Errorf("subset: batch size %d < 0", m.BatchSize)
	}
	switch m.Mode {
	case ModeExact:
	case ModeBucketed:
		if m.Algo != AlgoLeader && m.Algo != AlgoAgglomerative {
			return fmt.Errorf("subset: bucketed mode needs a threshold algorithm (leader or agglomerative), got %v", m.Algo)
		}
	case ModeSampled:
		if m.Algo != AlgoKMeans {
			return fmt.Errorf("subset: sampled mode is mini-batch k-means; algorithm must be kmeans, got %v", m.Algo)
		}
	case ModeStreaming:
		if m.Algo != AlgoLeader {
			return fmt.Errorf("subset: streaming mode is one-pass leader clustering; algorithm must be leader, got %v", m.Algo)
		}
		if m.PCAComponents > 0 {
			return fmt.Errorf("subset: streaming mode cannot fit PCA (needs the full matrix); set PCA components to 0")
		}
	default:
		return fmt.Errorf("subset: unknown cluster mode %v", m.Mode)
	}
	return nil
}

// keyInto mixes every field that can change a clustering into a cache
// key builder. Each field is written unconditionally and in fixed
// order, so two Methods key identically iff they cluster identically.
func (m Method) keyInto(b *cache.KeyBuilder) *cache.KeyBuilder {
	return b.Uint(uint64(m.Algo)).
		Float(m.Threshold).
		Int(int64(m.K)).
		Uint(m.Seed).
		Int(int64(m.MaxIter)).
		String(m.Normalizer).
		Strings(m.FeatureGroups).
		Int(int64(m.PCAComponents)).
		Uint(uint64(m.Mode)).
		Int(int64(m.BatchSize))
}

func (m Method) newNormalizer() linalg.Normalizer {
	switch m.Normalizer {
	case "minmax":
		return &linalg.MinMax{}
	case "none":
		return linalg.Identity1{}
	default:
		return &linalg.ZScore{}
	}
}

// ClusteredFrame is the clustering of one frame plus the derived
// representatives: for each cluster, the index of its medoid draw and
// its weight (member count).
type ClusteredFrame struct {
	FrameIndex int
	Result     cluster.Result
	RepDraws   []int     // per cluster: draw index within the frame
	Weights    []float64 // per cluster: member count
}

// PredictNs reconstructs the frame's cost from representatives alone:
// sum over clusters of rep cost x cluster size. This is the quantity
// whose deviation from the true frame cost the paper reports as
// "performance prediction error per frame".
func (cf *ClusteredFrame) PredictNs(o CostOracle, f *trace.Frame) float64 {
	var total float64
	for c, di := range cf.RepDraws {
		total += o.DrawNs(&f.Draws[di]) * cf.Weights[c]
	}
	return total
}

// FrameClusterer clusters the frames of one workload under a fixed
// method. Feature extraction is shared; normalization is fitted per
// frame.
type FrameClusterer struct {
	ex      *features.Extractor
	method  Method
	featIdx []int // nil = all features
}

// NewFrameClusterer validates the method and prepares extraction.
func NewFrameClusterer(w *trace.Workload, m Method) (*FrameClusterer, error) {
	ex, err := features.NewExtractor(w)
	if err != nil {
		return nil, err
	}
	return newClusterer(ex, m)
}

// NewShellFrameClusterer is the streaming variant: it binds to a
// frameless shell workload (trace.Header.Shell) and clusters frames
// that are not stored in the workload.
func NewShellFrameClusterer(w *trace.Workload, m Method) (*FrameClusterer, error) {
	ex, err := features.NewShellExtractor(w)
	if err != nil {
		return nil, err
	}
	return newClusterer(ex, m)
}

func newClusterer(ex *features.Extractor, m Method) (*FrameClusterer, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	var idx []int
	if len(m.FeatureGroups) > 0 {
		var err error
		idx, err = features.GroupIndices(m.FeatureGroups...)
		if err != nil {
			return nil, err
		}
	}
	return &FrameClusterer{ex: ex, method: m, featIdx: idx}, nil
}

// ClusterFrames clusters the frames at the given indices concurrently
// with at most workers goroutines (workers <= 0 selects GOMAXPROCS),
// returning results in idx order. A nil idx clusters every frame. Each
// frame's clustering is fully independent — normalizers, PCA fits, and
// the k-means RNG (seeded per frame index) are all per-call state — so
// the result is bit-identical at any worker count.
func (fc *FrameClusterer) ClusterFrames(ctx context.Context, frames []trace.Frame, idx []int, workers int) ([]ClusteredFrame, error) {
	if idx == nil {
		return parallel.Map(ctx, workers, len(frames), func(ctx context.Context, i int) (ClusteredFrame, error) {
			return fc.ClusterFrameContext(ctx, &frames[i], i)
		})
	}
	return parallel.MapSlice(ctx, workers, idx, func(ctx context.Context, _ int, fi int) (ClusteredFrame, error) {
		if fi < 0 || fi >= len(frames) {
			return ClusteredFrame{}, fmt.Errorf("subset: frame index %d outside [0, %d)", fi, len(frames))
		}
		return fc.ClusterFrameContext(ctx, &frames[fi], fi)
	})
}

// ClusterFrame clusters one frame and selects representatives,
// without cache involvement. Use ClusterFrameContext on paths that
// may run under a cache binding.
func (fc *FrameClusterer) ClusterFrame(f *trace.Frame, frameIndex int) (ClusteredFrame, error) {
	return fc.clusterFrame(context.Background(), f, frameIndex)
}

// ClusterFrameContext is ClusterFrame through the result cache: when
// ctx carries a cache binding (cache.WithWorkload), the frame's
// ClusteredFrame is served content-addressed under (workload
// fingerprint, frame index, method fields, cluster version), and
// concurrent workers clustering the same frame share one computation.
// A clustering hit skips feature extraction entirely; a clustering
// miss still reuses a cached feature matrix when one exists, so a
// method sweep over one workload extracts each frame's features once.
func (fc *FrameClusterer) ClusterFrameContext(ctx context.Context, f *trace.Frame, frameIndex int) (ClusteredFrame, error) {
	c, fp, ok := cache.ForWorkload(ctx)
	if !ok {
		return fc.clusterFrame(ctx, f, frameIndex)
	}
	key := fc.method.keyInto(cache.NewKey("subset.clusterframe", ClusterVersion).
		Bytes(fp[:]).
		Int(int64(frameIndex))).
		Sum()
	return cache.GetOrCompute(ctx, c, key, func() (ClusteredFrame, error) {
		return fc.clusterFrame(ctx, f, frameIndex)
	})
}

// frameScratch pools feature matrices for the uncached hot path: one
// Get/Put per frame instead of one n x d allocation per frame. Only
// safe off the cache path — cached matrices outlive the call.
var frameScratch = sync.Pool{New: func() any { return &linalg.Matrix{} }}

func (fc *FrameClusterer) clusterFrame(ctx context.Context, f *trace.Frame, frameIndex int) (ClusteredFrame, error) {
	if fc.method.Mode == ModeStreaming {
		return fc.clusterFrameStreaming(ctx, f, frameIndex)
	}
	var x *linalg.Matrix
	var err error
	if _, _, cached := cache.ForWorkload(ctx); cached {
		x, err = fc.ex.FrameContext(ctx, f, frameIndex)
		if err != nil {
			return ClusteredFrame{}, err
		}
	} else {
		x = fc.ex.FrameInto(f, frameScratch.Get().(*linalg.Matrix))
		defer frameScratch.Put(x)
	}
	if fc.featIdx != nil {
		x = features.Select(x, fc.featIdx)
	}
	norm := fc.method.newNormalizer()
	norm.Fit(x)
	for i := 0; i < x.Rows; i++ {
		norm.Apply(x.Row(i))
	}
	if k := fc.method.PCAComponents; k > 0 {
		pca, err := linalg.FitPCA(x, k)
		if err != nil {
			return ClusteredFrame{}, fmt.Errorf("subset: PCA on frame %d: %w", frameIndex, err)
		}
		x = pca.TransformMatrix(x)
	}

	var res cluster.Result
	var stats cluster.BucketStats
	bucketed := fc.method.Mode == ModeBucketed
	switch fc.method.Algo {
	case AlgoLeader:
		if bucketed {
			res, stats, err = cluster.LeaderBucketed(x, fc.method.Threshold)
		} else {
			res, err = cluster.Leader(x, fc.method.Threshold)
		}
	case AlgoKMeans:
		k := fc.method.K
		sampled := fc.method.Mode == ModeSampled
		if k == 0 {
			// Derive K from leader clustering at the threshold; the
			// sampled mode uses the bucketed leader so K derivation is
			// sub-linear too.
			if sampled {
				lead, lstats, lerr := cluster.LeaderBucketed(x, fc.method.Threshold)
				if lerr != nil {
					return ClusteredFrame{}, lerr
				}
				stats = lstats
				k = lead.K
			} else {
				lead, lerr := cluster.Leader(x, fc.method.Threshold)
				if lerr != nil {
					return ClusteredFrame{}, lerr
				}
				k = lead.K
			}
		}
		rng := dcmath.NewRNG(fc.method.Seed ^ uint64(frameIndex)*0x9e3779b97f4a7c15)
		if sampled {
			batch := fc.method.BatchSize
			if batch == 0 {
				batch = DefaultBatchSize
			}
			res, err = cluster.MiniBatchKMeans(x, k, rng, batch, fc.method.MaxIter)
		} else {
			res, err = cluster.KMeans(x, k, rng, fc.method.MaxIter)
		}
	case AlgoAgglomerative:
		if bucketed {
			res, stats, err = cluster.AgglomerativeBucketed(x, fc.method.Threshold)
		} else {
			res, err = cluster.Agglomerative(x, fc.method.Threshold)
		}
	}
	if err != nil {
		return ClusteredFrame{}, fmt.Errorf("subset: clustering frame %d: %w", frameIndex, err)
	}
	recordBucketStats(ctx, stats)
	cf := ClusteredFrame{
		FrameIndex: frameIndex,
		Result:     res,
		RepDraws:   res.Medoids(x),
	}
	sizes := res.Sizes()
	cf.Weights = make([]float64, res.K)
	for c, s := range sizes {
		cf.Weights[c] = float64(s)
	}
	return cf, nil
}
