package subset

import "fmt"

// Mode selects the execution strategy for the per-frame clustering
// hot path. ModeExact is the default and reproduces the historical
// algorithms bit-for-bit; the other modes trade exactness for speed
// and are validated against the exact path by the equivalence suite
// (internal/core/equivalence_test.go).
type Mode uint8

const (
	// ModeExact runs the configured algorithm unmodified. Output is
	// byte-identical to the golden corpus at any worker count.
	ModeExact Mode = iota

	// ModeBucketed pre-buckets draws by quantized feature signature so
	// leader/agglomerative inner loops only compare bucket-mates.
	// Bucketing only splits clusters relative to exact (it prunes merge
	// candidates, never loosens acceptance), so subsets stay valid —
	// just occasionally a little larger.
	ModeBucketed

	// ModeSampled runs mini-batch k-means: each iteration updates
	// centers from a random sample of Method.BatchSize draws instead of
	// the full frame. Sub-linear in draws per iteration.
	ModeSampled

	// ModeStreaming clusters draws one at a time with a one-pass
	// leader variant and never materializes the frame's feature
	// matrix: O(dims + K x dims) working memory regardless of draw
	// count.
	ModeStreaming
)

// String returns the mode name, the same spelling ParseMode accepts.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeBucketed:
		return "bucketed"
	case ModeSampled:
		return "sampled"
	case ModeStreaming:
		return "streaming"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode parses a mode name. The empty string is ModeExact, so
// zero-valued configs keep the historical behavior.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return ModeExact, nil
	case "bucketed":
		return ModeBucketed, nil
	case "sampled":
		return ModeSampled, nil
	case "streaming":
		return ModeStreaming, nil
	default:
		return ModeExact, fmt.Errorf("subset: unknown cluster mode %q (want exact, bucketed, sampled or streaming)", s)
	}
}
