package subset

import (
	"math"
	"testing"

	"repro/internal/cache"
)

func TestParseMode(t *testing.T) {
	good := map[string]Mode{
		"":          ModeExact,
		"exact":     ModeExact,
		"bucketed":  ModeBucketed,
		"sampled":   ModeSampled,
		"streaming": ModeStreaming,
	}
	for s, want := range good {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
		if s != "" && got.String() != s {
			t.Errorf("Mode(%v).String() = %q, want %q (round trip)", got, got.String(), s)
		}
	}
	if _, err := ParseMode("turbo"); err == nil {
		t.Error("ParseMode accepted unknown mode")
	}
}

func TestModeValidation(t *testing.T) {
	bad := map[string]Method{
		"bucketed kmeans":     {Algo: AlgoKMeans, K: 5, MaxIter: 10, Mode: ModeBucketed},
		"sampled leader":      {Algo: AlgoLeader, Threshold: 1, Mode: ModeSampled},
		"sampled agglo":       {Algo: AlgoAgglomerative, Threshold: 1, Mode: ModeSampled},
		"streaming kmeans":    {Algo: AlgoKMeans, K: 5, MaxIter: 10, Mode: ModeStreaming},
		"streaming pca":       {Algo: AlgoLeader, Threshold: 1, Mode: ModeStreaming, PCAComponents: 3},
		"negative batch size": {Algo: AlgoKMeans, K: 5, MaxIter: 10, Mode: ModeSampled, BatchSize: -1},
		"unknown mode":        {Algo: AlgoLeader, Threshold: 1, Mode: Mode(99)},
	}
	for name, m := range bad {
		if m.validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := []Method{
		{Algo: AlgoLeader, Threshold: 1, Mode: ModeBucketed},
		{Algo: AlgoAgglomerative, Threshold: 1, Mode: ModeBucketed},
		{Algo: AlgoKMeans, Threshold: 1, MaxIter: 10, Mode: ModeSampled},
		{Algo: AlgoKMeans, K: 5, MaxIter: 10, Mode: ModeSampled, BatchSize: 64},
		{Algo: AlgoLeader, Threshold: 1, Mode: ModeStreaming},
	}
	for _, m := range good {
		if err := m.validate(); err != nil {
			t.Errorf("%+v: rejected: %v", m, err)
		}
	}
}

// Mode and BatchSize must feed the cache key: two methods differing
// only in hot-path strategy cluster differently and cannot share
// cached results.
func TestModeChangesCacheKey(t *testing.T) {
	base := DefaultMethod()
	variants := []Method{base, base, base}
	variants[1].Mode = ModeBucketed
	variants[2].Mode = ModeSampled
	variants[2].Algo = AlgoKMeans
	variants[2].MaxIter = 10
	withBatch := variants[2]
	withBatch.BatchSize = 128
	variants = append(variants, withBatch)
	seen := map[string]int{}
	for i, m := range variants {
		k := m.keyInto(cache.NewKey("test", 1)).Sum().String()
		if j, dup := seen[k]; dup && i != 1 {
			t.Errorf("methods %d and %d share a cache key", j, i)
		}
		seen[k] = i
	}
	if len(seen) != 4 {
		t.Errorf("got %d distinct keys, want 4", len(seen))
	}
}

// Every non-exact mode must produce a structurally valid clustering on
// a real synthetic frame, with representatives and weights consistent
// with the assignment.
func TestClusterFrameModes(t *testing.T) {
	w := testGame(t)
	f := &w.Frames[0]
	modes := []Method{
		{Algo: AlgoLeader, Threshold: 0.5, Normalizer: "zscore", Mode: ModeBucketed},
		{Algo: AlgoAgglomerative, Threshold: 0.5, Normalizer: "zscore", Mode: ModeBucketed},
		{Algo: AlgoKMeans, Threshold: 0.5, MaxIter: 25, Normalizer: "zscore", Mode: ModeSampled},
		{Algo: AlgoLeader, Threshold: 0.5, Normalizer: "zscore", Mode: ModeStreaming},
		{Algo: AlgoLeader, Threshold: 0.5, Normalizer: "minmax", Mode: ModeStreaming},
		{Algo: AlgoLeader, Threshold: 3.0, Normalizer: "none", Mode: ModeStreaming},
		{Algo: AlgoLeader, Threshold: 0.5, Normalizer: "zscore", Mode: ModeStreaming,
			FeatureGroups: []string{"vshader", "pshader"}},
	}
	for _, m := range modes {
		name := m.Mode.String() + "/" + m.Algo.String() + "/" + m.Normalizer
		fc, err := NewFrameClusterer(w, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cf, err := fc.ClusterFrame(f, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cf.Result.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cf.RepDraws) != cf.Result.K || len(cf.Weights) != cf.Result.K {
			t.Fatalf("%s: %d reps, %d weights for K=%d", name, len(cf.RepDraws), len(cf.Weights), cf.Result.K)
		}
		var total float64
		for c, di := range cf.RepDraws {
			if di < 0 || di >= len(f.Draws) {
				t.Fatalf("%s: rep %d out of range", name, di)
			}
			if cf.Result.Assign[di] != c {
				t.Fatalf("%s: rep of cluster %d is assigned to %d", name, c, cf.Result.Assign[di])
			}
			total += cf.Weights[c]
		}
		if total != float64(len(f.Draws)) {
			t.Fatalf("%s: weights sum to %v, want %d", name, total, len(f.Draws))
		}
	}
}

// Streaming mode is deterministic and close to the exact leader
// clustering: same draws, same order, same threshold — only the
// bucketing-induced splits may differ.
func TestStreamingModeDeterministicAndComparable(t *testing.T) {
	w := testGame(t)
	f := &w.Frames[0]
	m := Method{Algo: AlgoLeader, Threshold: 0.5, Normalizer: "zscore", Mode: ModeStreaming}
	fc, err := NewFrameClusterer(w, m)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fc.ClusterFrame(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fc.ClusterFrame(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.K != b.Result.K {
		t.Fatalf("streaming K not deterministic: %d vs %d", a.Result.K, b.Result.K)
	}
	for i := range a.Result.Assign {
		if a.Result.Assign[i] != b.Result.Assign[i] {
			t.Fatalf("streaming assignment %d not deterministic", i)
		}
	}

	exact := m
	exact.Mode = ModeExact
	fe, err := NewFrameClusterer(w, exact)
	if err != nil {
		t.Fatal(err)
	}
	e, err := fe.ClusterFrame(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.K < e.Result.K {
		t.Fatalf("streaming K=%d below exact K=%d (bucketing must only split)", a.Result.K, e.Result.K)
	}
	// Normalization matches the batch fit closely: cluster counts stay
	// in the same regime (splits only, bounded blow-up).
	if float64(a.Result.K) > 3*float64(e.Result.K)+8 {
		t.Fatalf("streaming K=%d, exact K=%d: split blow-up out of tolerance", a.Result.K, e.Result.K)
	}
	if math.Abs(a.Result.Efficiency()-e.Result.Efficiency()) > 0.35 {
		t.Fatalf("streaming efficiency %v vs exact %v", a.Result.Efficiency(), e.Result.Efficiency())
	}
}
