package subset

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/features"
	"repro/internal/trace"
)

// permutedFrame returns a private copy of f with draws shuffled under
// a fixed seed. The original (possibly shared) frame is untouched.
func permutedFrame(f *trace.Frame, seed int64) trace.Frame {
	draws := make([]trace.DrawCall, len(f.Draws))
	copy(draws, f.Draws)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(draws), func(i, j int) { draws[i], draws[j] = draws[j], draws[i] })
	return trace.Frame{Scene: f.Scene, Draws: draws}
}

// TestAgglomerativePermutationInvariant: agglomerative clustering
// merges by pairwise distance, so the partition it finds must not
// depend on draw submission order. The cluster count and the sorted
// multiset of cluster sizes are the order-free view of the partition.
func TestAgglomerativePermutationInvariant(t *testing.T) {
	w := testGame(t)
	m := DefaultMethod()
	m.Algo = AlgoAgglomerative
	fc, err := NewFrameClusterer(w, m)
	if err != nil {
		t.Fatal(err)
	}
	for fi := 0; fi < 4; fi++ {
		f := &w.Frames[fi]
		base, err := fc.ClusterFrame(f, fi)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 2, 3} {
			pf := permutedFrame(f, seed)
			got, err := fc.ClusterFrame(&pf, fi)
			if err != nil {
				t.Fatal(err)
			}
			if got.Result.K != base.Result.K {
				t.Errorf("frame %d seed %d: K = %d after permutation, want %d",
					fi, seed, got.Result.K, base.Result.K)
				continue
			}
			a, b := base.Result.Sizes(), got.Result.Sizes()
			sort.Ints(a)
			sort.Ints(b)
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("frame %d seed %d: sorted cluster sizes differ at %d: %d vs %d",
						fi, seed, i, a[i], b[i])
					break
				}
			}
		}
	}
}

// featOracle prices a draw as an integer-valued function of its
// feature vector alone. Draws with identical features cost identical
// nanoseconds, and all sums/products of costs are exact in float64 —
// which is what makes the zero-reconstruction-error property below an
// exact equality, not a tolerance check.
type featOracle struct {
	ex *features.Extractor
}

func (o featOracle) DrawNs(d *trace.DrawCall) float64 {
	var acc uint64
	for i, x := range o.ex.Draw(d) {
		acc = acc*1099511628211 + math.Float64bits(x) + uint64(i)
	}
	return float64(1 + acc%100000)
}

// TestTinyThresholdReconstructionExact: with leader clustering at a
// near-zero threshold over raw (unnormalized) features, every cluster
// holds only draws with identical feature vectors. A cost model that
// reads nothing but the features then prices each member exactly like
// its representative, so rep-cost x weight reconstruction equals the
// true frame cost bit-for-bit.
func TestTinyThresholdReconstructionExact(t *testing.T) {
	w := testGame(t)
	m := Method{Algo: AlgoLeader, Threshold: 1e-9, Normalizer: "none"}
	fc, err := NewFrameClusterer(w, m)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := features.NewExtractor(w)
	if err != nil {
		t.Fatal(err)
	}
	o := featOracle{ex: ex}
	for fi := 0; fi < 4; fi++ {
		f := &w.Frames[fi]
		cf, err := fc.ClusterFrame(f, fi)
		if err != nil {
			t.Fatal(err)
		}
		var actual float64
		for di := range f.Draws {
			actual += o.DrawNs(&f.Draws[di])
		}
		pred := cf.PredictNs(o, f)
		if pred != actual {
			t.Errorf("frame %d: reconstruction %v != actual %v (K=%d of %d draws)",
				fi, pred, actual, cf.Result.K, len(f.Draws))
		}
	}
}

// TestUniformFrameCollapsesToOneCluster: a frame of identical draws
// has zero feature spread, so any distance-threshold algorithm must
// produce a single cluster whose reconstruction is exact.
func TestUniformFrameCollapsesToOneCluster(t *testing.T) {
	w := testGame(t)
	src := w.Frames[0].Draws[0]
	draws := make([]trace.DrawCall, 16)
	for i := range draws {
		draws[i] = src
	}
	f := trace.Frame{Scene: w.Frames[0].Scene, Draws: draws}

	ex, err := features.NewExtractor(w)
	if err != nil {
		t.Fatal(err)
	}
	o := featOracle{ex: ex}
	for _, algo := range []Algo{AlgoLeader, AlgoAgglomerative} {
		fc, err := NewFrameClusterer(w, Method{Algo: algo, Threshold: 0.5, Normalizer: "zscore"})
		if err != nil {
			t.Fatal(err)
		}
		cf, err := fc.ClusterFrame(&f, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cf.Result.K != 1 {
			t.Errorf("%v: identical draws clustered into K=%d", algo, cf.Result.K)
		}
		if pred, want := cf.PredictNs(o, &f), o.DrawNs(&src)*16; pred != want {
			t.Errorf("%v: uniform frame reconstruction %v, want %v", algo, pred, want)
		}
	}
}
