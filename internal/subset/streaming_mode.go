package subset

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/features"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/trace"
)

// recordBucketStats publishes pre-bucketing counters to the run's
// metrics registry. The comparisons counter is the one to watch: it is
// the hot path's actual work, and bucketing exists to shrink it.
func recordBucketStats(ctx context.Context, s cluster.BucketStats) {
	if s.Points == 0 {
		return
	}
	reg := obs.RunFromContext(ctx).Metrics()
	reg.Counter("cluster.bucket.points").Add(int64(s.Points))
	reg.Counter("cluster.bucket.buckets").Add(int64(s.Buckets))
	reg.Counter("cluster.bucket.compares").Add(int64(s.Comparisons))
}

// onlineNorm fits the per-frame feature scaling in one pass over the
// draws, without the feature matrix the batch Normalizers need.
// ZScore uses Welford's update, so its variance can differ from the
// batch two-pass fit in the last bits — acceptable for the streaming
// mode, which is approximate by contract and covered by the
// equivalence suite rather than the golden corpus.
type onlineNorm struct {
	kind         string // "zscore", "minmax" or "none"
	n            float64
	mean, m2     []float64 // Welford accumulators (zscore)
	min, max     []float64 // running extrema (minmax)
	shift, scale []float64 // finalized: v[j] = (v[j] - shift[j]) * scale[j]
}

func newOnlineNorm(kind string, dims int) *onlineNorm {
	o := &onlineNorm{kind: kind}
	switch kind {
	case "", "zscore":
		o.kind = "zscore"
		o.mean = make([]float64, dims)
		o.m2 = make([]float64, dims)
	case "minmax":
		o.min = make([]float64, dims)
		o.max = make([]float64, dims)
		for j := range o.min {
			o.min[j] = math.Inf(1)
			o.max[j] = math.Inf(-1)
		}
	case "none":
	}
	return o
}

func (o *onlineNorm) observe(v []float64) {
	switch o.kind {
	case "zscore":
		o.n++
		for j, x := range v {
			d := x - o.mean[j]
			o.mean[j] += d / o.n
			o.m2[j] += d * (x - o.mean[j])
		}
	case "minmax":
		for j, x := range v {
			if x < o.min[j] {
				o.min[j] = x
			}
			if x > o.max[j] {
				o.max[j] = x
			}
		}
	}
}

func (o *onlineNorm) finalize() {
	switch o.kind {
	case "zscore":
		o.shift = o.mean
		o.scale = make([]float64, len(o.mean))
		for j := range o.scale {
			if o.n > 0 {
				if sd := math.Sqrt(o.m2[j] / o.n); sd > 0 {
					o.scale[j] = 1 / sd
				}
			} // constant feature collapses to 0, matching linalg.ZScore
		}
	case "minmax":
		o.shift = o.min
		o.scale = make([]float64, len(o.min))
		for j := range o.scale {
			if r := o.max[j] - o.min[j]; r > 0 {
				o.scale[j] = 1 / r
			}
		}
	}
}

func (o *onlineNorm) apply(v []float64) {
	if o.kind == "none" {
		return
	}
	for j := range v {
		v[j] = (v[j] - o.shift[j]) * o.scale[j]
	}
}

// clusterFrameStreaming is the ModeStreaming hot path: three passes of
// per-draw extraction — fit scaling, cluster, pick medoids — with
// O(dims + K x dims) working memory and no n x dims matrix, ever. It
// is what lets a corpus-scale run cluster frames far larger than
// memory would allow the exact path.
func (fc *FrameClusterer) clusterFrameStreaming(ctx context.Context, f *trace.Frame, frameIndex int) (ClusteredFrame, error) {
	dims := features.NumFeatures
	if fc.featIdx != nil {
		dims = len(fc.featIdx)
	}
	n := len(f.Draws)
	cf := ClusteredFrame{FrameIndex: frameIndex}
	if n == 0 {
		cf.Result = cluster.Result{Assign: []int{}, Centroids: linalg.NewMatrix(0, dims)}
		cf.RepDraws = []int{}
		cf.Weights = []float64{}
		return cf, nil
	}

	full := make([]float64, features.NumFeatures)
	vec := full
	if fc.featIdx != nil {
		vec = make([]float64, dims)
	}
	extract := func(i int) {
		fc.ex.DrawInto(&f.Draws[i], full)
		if fc.featIdx != nil {
			for j, k := range fc.featIdx {
				vec[j] = full[k]
			}
		}
	}

	// Pass 1: fit the per-frame scaling online.
	norm := newOnlineNorm(fc.method.Normalizer, dims)
	for i := 0; i < n; i++ {
		extract(i)
		norm.observe(vec)
	}
	norm.finalize()

	// Pass 2: one-pass leader clustering over normalized draws.
	sl, err := cluster.NewStreamingLeader(dims, fc.method.Threshold)
	if err != nil {
		return ClusteredFrame{}, fmt.Errorf("subset: streaming frame %d: %w", frameIndex, err)
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		extract(i)
		norm.apply(vec)
		assign[i] = sl.Add(vec)
	}
	recordBucketStats(ctx, sl.Stats())

	cf.Result = cluster.Result{Assign: assign, K: sl.K(), Centroids: sl.Centroids()}

	// Pass 3: medoids — the member nearest its cluster centroid.
	best := make([]int, sl.K())
	bestD := make([]float64, sl.K())
	for c := range best {
		best[c] = -1
	}
	cent := cf.Result.Centroids
	for i := 0; i < n; i++ {
		extract(i)
		norm.apply(vec)
		c := assign[i]
		d := linalg.SqDist(vec, cent.Row(c))
		if best[c] == -1 || d < bestD[c] {
			best[c] = i
			bestD[c] = d
		}
	}
	cf.RepDraws = best

	sizes := sl.Sizes()
	cf.Weights = make([]float64, len(sizes))
	for c, s := range sizes {
		cf.Weights[c] = float64(s)
	}
	return cf, nil
}
