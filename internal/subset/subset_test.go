package subset

import (
	"math"
	"testing"

	"repro/internal/dcmath"
	"repro/internal/gpu"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/tracetest"
)

func testGame(t *testing.T) *trace.Workload {
	t.Helper()
	p := synth.Bioshock1Profile()
	p.Name = "subsettest"
	p.Frames = 64
	p.MaterialsPerScene = 50
	p.SharedMaterials = 10
	p.Textures = 100
	p.VSPool = 8
	p.PSPool = 24
	w, err := tracetest.CachedWorkload(p, 31)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testOracle(t *testing.T, w *trace.Workload) *gpu.Simulator {
	t.Helper()
	s, err := gpu.NewSimulator(gpu.BaseConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultMethodValid(t *testing.T) {
	if err := DefaultMethod().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMethodValidation(t *testing.T) {
	cases := map[string]Method{
		"leader zero threshold": {Algo: AlgoLeader},
		"agglo zero threshold":  {Algo: AlgoAgglomerative},
		"kmeans negative k":     {Algo: AlgoKMeans, K: -1, MaxIter: 10},
		"kmeans no k no thresh": {Algo: AlgoKMeans, MaxIter: 10},
		"kmeans no iter":        {Algo: AlgoKMeans, K: 5},
		"unknown algo":          {Algo: Algo(99), Threshold: 1},
		"unknown normalizer":    {Algo: AlgoLeader, Threshold: 1, Normalizer: "what"},
	}
	for name, m := range cases {
		if m.validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestClusterFrameGroupsMaterials(t *testing.T) {
	w := testGame(t)
	fc, err := NewFrameClusterer(w, DefaultMethod())
	if err != nil {
		t.Fatal(err)
	}
	f := &w.Frames[0]
	cf, err := fc.ClusterFrame(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Result.Validate(); err != nil {
		t.Fatal(err)
	}
	// Clusters should be far fewer than draws (redundancy exploited)
	// but more than a handful (materials are distinct).
	if cf.Result.K >= len(f.Draws) {
		t.Errorf("K = %d of %d draws; no grouping", cf.Result.K, len(f.Draws))
	}
	if cf.Result.K < 10 {
		t.Errorf("K = %d; everything merged", cf.Result.K)
	}
	// Weights sum to the draw count.
	var sum float64
	for _, wgt := range cf.Weights {
		sum += wgt
	}
	if int(sum) != len(f.Draws) {
		t.Errorf("weights sum to %v, frame has %d draws", sum, len(f.Draws))
	}
	// Representatives are members of their cluster.
	for c, di := range cf.RepDraws {
		if cf.Result.Assign[di] != c {
			t.Errorf("rep of cluster %d assigned to %d", c, cf.Result.Assign[di])
		}
	}
}

func TestClusterFramePredictionAccuracy(t *testing.T) {
	w := testGame(t)
	sim := testOracle(t, w)
	fc, _ := NewFrameClusterer(w, DefaultMethod())
	var errs []float64
	for fi := 0; fi < 8; fi++ {
		f := &w.Frames[fi]
		cf, err := fc.ClusterFrame(f, fi)
		if err != nil {
			t.Fatal(err)
		}
		actual := sim.FrameNs(f)
		pred := cf.PredictNs(sim, f)
		errs = append(errs, math.Abs(pred-actual)/actual)
	}
	mean := dcmath.Mean(errs)
	if mean > 0.06 {
		t.Errorf("mean per-frame prediction error = %.3f, want small", mean)
	}
}

func TestClusterFrameAlgoArms(t *testing.T) {
	w := testGame(t)
	f := &w.Frames[0]
	for _, m := range []Method{
		{Algo: AlgoLeader, Threshold: 1.0, Normalizer: "zscore"},
		{Algo: AlgoKMeans, K: 40, MaxIter: 30, Normalizer: "minmax"},
		{Algo: AlgoKMeans, K: 0, Threshold: 1.0, MaxIter: 30}, // K derived from leader
		{Algo: AlgoLeader, Threshold: 1.0, Normalizer: "none"},
		{Algo: AlgoLeader, Threshold: 1.0, FeatureGroups: []string{"geometry", "pshader"}},
	} {
		fc, err := NewFrameClusterer(w, m)
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		cf, err := fc.ClusterFrame(f, 0)
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if err := cf.Result.Validate(); err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
	}
}

func TestNewFrameClustererErrors(t *testing.T) {
	w := testGame(t)
	if _, err := NewFrameClusterer(w, Method{Algo: AlgoLeader}); err == nil {
		t.Error("invalid method accepted")
	}
	if _, err := NewFrameClusterer(w, Method{Algo: AlgoLeader, Threshold: 1, FeatureGroups: []string{"bogus"}}); err == nil {
		t.Error("bogus feature group accepted")
	}
}

func TestBuildSubset(t *testing.T) {
	w := testGame(t)
	s, err := Build(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Frames) != s.Detection.NumPhases {
		t.Errorf("frames %d != phases %d", len(s.Frames), s.Detection.NumPhases)
	}
	// Subset must be a small fraction of the parent.
	ratio := s.SizeRatio()
	if ratio <= 0 || ratio > 0.2 {
		t.Errorf("size ratio = %v", ratio)
	}
}

func TestSubsetEstimatesParentCost(t *testing.T) {
	w := testGame(t)
	sim := testOracle(t, w)
	s, err := Build(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parent := sim.Run().TotalNs
	est := s.EstimateParentNs(sim)
	relErr := math.Abs(est-parent) / parent
	if relErr > 0.10 {
		t.Errorf("subset estimate off by %.1f%%", relErr*100)
	}
}

func TestSubsetScalingTracksParent(t *testing.T) {
	// The headline validation: subset and parent speedup curves across
	// a core-frequency sweep must correlate tightly.
	w := testGame(t)
	s, err := Build(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var parentT, subsetT []float64
	for _, ghz := range []float64{0.5, 0.75, 1.0, 1.5, 2.0} {
		sim, err := gpu.NewSimulator(gpu.BaseConfig().WithCoreClock(ghz), w)
		if err != nil {
			t.Fatal(err)
		}
		parentT = append(parentT, sim.Run().TotalNs)
		subsetT = append(subsetT, s.EstimateParentNs(sim))
	}
	parentSpeedup := make([]float64, len(parentT))
	subsetSpeedup := make([]float64, len(subsetT))
	for i := range parentT {
		parentSpeedup[i] = parentT[0] / parentT[i]
		subsetSpeedup[i] = subsetT[0] / subsetT[i]
	}
	r := dcmath.Pearson(parentSpeedup, subsetSpeedup)
	if r < 0.995 {
		t.Errorf("frequency-scaling correlation = %v, want >= 0.995", r)
	}
}

func TestSubsetValidateRejects(t *testing.T) {
	w := testGame(t)
	s, _ := Build(w, DefaultOptions())
	good := *s
	bad := good
	bad.Parent = nil
	if bad.Validate() == nil {
		t.Error("nil parent accepted")
	}
	bad = good
	bad.Frames = nil
	if bad.Validate() == nil {
		t.Error("no frames accepted")
	}
	// Mutated weight.
	bad = good
	bad.Frames = append([]Frame{}, good.Frames...)
	bad.Frames[0].Weights = append([]float64{}, good.Frames[0].Weights...)
	bad.Frames[0].Weights[0] = 0.5
	if bad.Validate() == nil {
		t.Error("sub-1 weight accepted")
	}
}

func TestBaselineSamplers(t *testing.T) {
	w := tracetest.Tiny()
	f := &w.Frames[0] // 4 draws
	rng := dcmath.NewRNG(3)
	for name, build := range map[string]func() (FrameSample, error){
		"random":  func() (FrameSample, error) { return RandomSample(f, 2, rng) },
		"uniform": func() (FrameSample, error) { return UniformSample(f, 2) },
		"firstn":  func() (FrameSample, error) { return FirstNSample(f, 2) },
	} {
		fs, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(fs.Draws) != 2 || len(fs.Weights) != 2 {
			t.Fatalf("%s: shape %d/%d", name, len(fs.Draws), len(fs.Weights))
		}
		var sum float64
		for _, wgt := range fs.Weights {
			sum += wgt
		}
		if math.Abs(sum-4) > 1e-9 {
			t.Errorf("%s: weights sum to %v, want 4", name, sum)
		}
		for _, di := range fs.Draws {
			if di < 0 || di >= 4 {
				t.Errorf("%s: draw index %d out of range", name, di)
			}
		}
	}
	if fs, _ := FirstNSample(f, 2); fs.Draws[0] != 0 || fs.Draws[1] != 1 {
		t.Error("FirstNSample did not take the first draws")
	}
	if _, err := RandomSample(f, 0, rng); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := UniformSample(f, 99); err == nil {
		t.Error("over budget accepted")
	}
}

func TestFullBudgetSampleIsExact(t *testing.T) {
	// Sampling every draw with weight 1 must predict the frame cost
	// exactly.
	w := tracetest.Tiny()
	sim := testOracle(t, w)
	f := &w.Frames[0]
	fs, err := UniformSample(f, len(f.Draws))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fs.PredictNs(sim, f), sim.FrameNs(f); math.Abs(got-want) > 1e-6 {
		t.Errorf("full sample prediction %v != actual %v", got, want)
	}
}

func TestClusteredFrameSampleConversion(t *testing.T) {
	w := testGame(t)
	fc, _ := NewFrameClusterer(w, DefaultMethod())
	cf, err := fc.ClusterFrame(&w.Frames[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := cf.Sample()
	sim := testOracle(t, w)
	a := cf.PredictNs(sim, &w.Frames[0])
	b := fs.PredictNs(sim, &w.Frames[0])
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("Sample() changed prediction: %v vs %v", a, b)
	}
}

func TestAlgoString(t *testing.T) {
	if AlgoLeader.String() != "leader" || AlgoKMeans.String() != "kmeans" || AlgoAgglomerative.String() != "agglomerative" {
		t.Error("algo names")
	}
}

func TestBuildMultipleFramesPerPhase(t *testing.T) {
	w := testGame(t)
	opt := DefaultOptions()
	opt.FramesPerPhase = 2
	s2, err := Build(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	s1, err := Build(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Frames) != 2*len(s1.Frames) {
		t.Errorf("frames: %d with 2/phase vs %d with 1/phase", len(s2.Frames), len(s1.Frames))
	}
	// Both subsets must remain usable estimators; which one is closer
	// on a given seed is frame-selection luck.
	sim := testOracle(t, w)
	parent := sim.Run().TotalNs
	e1 := math.Abs(s1.EstimateParentNs(sim)-parent) / parent
	e2 := math.Abs(s2.EstimateParentNs(sim)-parent) / parent
	if e1 > 0.10 || e2 > 0.10 {
		t.Errorf("estimate errors: 1/phase %.3f, 2/phase %.3f", e1, e2)
	}
	// Distinct parent frames must be selected per phase.
	seen := map[int]bool{}
	for i := range s2.Frames {
		if seen[s2.Frames[i].ParentFrame] {
			t.Fatalf("parent frame %d selected twice", s2.Frames[i].ParentFrame)
		}
		seen[s2.Frames[i].ParentFrame] = true
	}
	if _, err := Build(w, Options{Method: DefaultMethod(), Phase: DefaultOptions().Phase, FramesPerPhase: -1}); err == nil {
		t.Error("negative FramesPerPhase accepted")
	}
}

func TestPickFrames(t *testing.T) {
	got := pickFrames(10, 14, 1)
	if len(got) != 1 || got[0] != 12 {
		t.Errorf("single pick = %v, want [12]", got)
	}
	got = pickFrames(0, 4, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("two picks = %v, want [1 3]", got)
	}
	got = pickFrames(0, 2, 5) // clamp to span
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("clamped picks = %v, want [0 1]", got)
	}
}

func TestSingleFrameWorkloadSubsetNearExact(t *testing.T) {
	// One frame, interval 1: the subset is the frame's own clustering;
	// its estimate must equal the clustering prediction exactly and be
	// close to the true frame cost.
	w := testGame(t)
	w.Frames = w.Frames[:1]
	opt := DefaultOptions()
	opt.Phase.IntervalFrames = 1
	s, err := Build(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	sim := testOracle(t, w)
	actual := sim.FrameNs(&w.Frames[0])
	est := s.EstimateParentNs(sim)
	if rel := math.Abs(est-actual) / actual; rel > 0.05 {
		t.Errorf("single-frame estimate off by %.2f%%", rel*100)
	}
}

func TestEstimateParentTotalsLocal(t *testing.T) {
	w := testGame(t)
	s, err := Build(w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim := testOracle(t, w)
	tn, cn, mn, tb := s.EstimateParentTotals(sim)
	if tn <= 0 || cn <= 0 || mn <= 0 || tb <= 0 {
		t.Fatalf("totals not positive: %v %v %v %v", tn, cn, mn, tb)
	}
	// Total time must agree with the scalar estimator.
	if est := s.EstimateParentNs(sim); math.Abs(tn-est)/est > 1e-9 {
		t.Errorf("totals time %v != EstimateParentNs %v", tn, est)
	}
}

func TestShellFrameClustererLocal(t *testing.T) {
	w := testGame(t)
	shell := &trace.Workload{
		Name:          w.Name,
		Shaders:       w.Shaders,
		Textures:      w.Textures,
		RenderTargets: w.RenderTargets,
	}
	fc, err := NewShellFrameClusterer(shell, DefaultMethod())
	if err != nil {
		t.Fatal(err)
	}
	cf, err := fc.ClusterFrame(&w.Frames[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Result.Validate(); err != nil {
		t.Fatal(err)
	}
	// Must match the full-workload clusterer exactly.
	full, err := NewFrameClusterer(w, DefaultMethod())
	if err != nil {
		t.Fatal(err)
	}
	cf2, err := full.ClusterFrame(&w.Frames[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Result.K != cf2.Result.K {
		t.Errorf("shell K %d != full K %d", cf.Result.K, cf2.Result.K)
	}
	bad := &trace.Workload{Name: "x"}
	if _, err := NewShellFrameClusterer(bad, DefaultMethod()); err == nil {
		t.Error("nil-registry shell accepted")
	}
}

func TestClusterFramePCAOption(t *testing.T) {
	w := testGame(t)
	m := DefaultMethod()
	m.PCAComponents = 8
	fc, err := NewFrameClusterer(w, m)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := fc.ClusterFrame(&w.Frames[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Result.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultMethod()
	bad.PCAComponents = -1
	if _, err := NewFrameClusterer(w, bad); err == nil {
		t.Error("negative PCA components accepted")
	}
}
