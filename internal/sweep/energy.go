package sweep

import (
	"fmt"

	"repro/internal/dcmath"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/subset"
	"repro/internal/trace"
)

// EnergyPoint is one configuration's performance and energy, measured
// on the parent and reconstructed from the subset.
type EnergyPoint struct {
	Config       gpu.Config
	ParentNs     float64
	SubsetNs     float64
	ParentEnergy gpu.Energy
	SubsetEnergy gpu.Energy
}

// EnergyResult is a completed energy-aware sweep.
type EnergyResult struct {
	Points []EnergyPoint
	// EDPCorrelation is the Pearson correlation of parent and subset
	// energy-delay-product curves (normalized to the first point).
	EDPCorrelation float64
	// BestByParentEDP / BestBySubsetEDP are the min-EDP picks.
	BestByParentEDP int
	BestBySubsetEDP int
	Agreement       bool
}

// RunEnergy prices the parent and the subset's reconstruction on every
// config under the power model, and compares min-EDP decisions.
func RunEnergy(w *trace.Workload, s *subset.Subset, pm gpu.PowerModel, cfgs []gpu.Config) (EnergyResult, error) {
	if err := pm.Validate(); err != nil {
		return EnergyResult{}, err
	}
	if len(cfgs) < 2 {
		return EnergyResult{}, fmt.Errorf("sweep: need at least 2 configs, have %d", len(cfgs))
	}
	res := EnergyResult{Points: make([]EnergyPoint, len(cfgs))}
	parentEDP := make([]float64, len(cfgs))
	subsetEDP := make([]float64, len(cfgs))
	for i, cfg := range cfgs {
		sim, err := gpu.NewSimulator(cfg, w)
		if err != nil {
			return EnergyResult{}, err
		}
		run, tot := sim.RunTotals()
		pe := pm.Energy(cfg, tot)

		tn, cn, mn, tb := s.EstimateParentTotals(sim)
		se := pm.Energy(cfg, gpu.Totals{TotalNs: tn, ComputeNs: cn, MemoryNs: mn, TrafficBytes: tb})

		res.Points[i] = EnergyPoint{
			Config: cfg, ParentNs: run.TotalNs, SubsetNs: tn,
			ParentEnergy: pe, SubsetEnergy: se,
		}
		parentEDP[i] = pe.EDPJs
		subsetEDP[i] = se.EDPJs
		if pe.EDPJs < parentEDP[res.BestByParentEDP] {
			res.BestByParentEDP = i
		}
		if se.EDPJs < subsetEDP[res.BestBySubsetEDP] {
			res.BestBySubsetEDP = i
		}
	}
	res.Agreement = res.BestByParentEDP == res.BestBySubsetEDP
	res.EDPCorrelation = dcmath.Pearson(
		metrics.Speedups(parentEDP, 0), metrics.Speedups(subsetEDP, 0))
	return res, nil
}
