package sweep

import (
	"context"
	"fmt"

	"repro/internal/dcmath"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/subset"
	"repro/internal/trace"
)

// EnergyPoint is one configuration's performance and energy, measured
// on the parent and reconstructed from the subset.
type EnergyPoint struct {
	Config       gpu.Config
	ParentNs     float64
	SubsetNs     float64
	ParentEnergy gpu.Energy
	SubsetEnergy gpu.Energy
}

// EnergyResult is a completed energy-aware sweep.
type EnergyResult struct {
	Points []EnergyPoint
	// EDPCorrelation is the Pearson correlation of parent and subset
	// energy-delay-product curves (normalized to the first point).
	EDPCorrelation float64
	// BestByParentEDP / BestBySubsetEDP are the min-EDP picks.
	BestByParentEDP int
	BestBySubsetEDP int
	Agreement       bool
}

// RunEnergy prices the parent and the subset's reconstruction on every
// config under the power model, and compares min-EDP decisions. The
// grid fans out across GOMAXPROCS workers; use RunEnergyParallel to
// bound the fan-out or cancel mid-sweep.
func RunEnergy(w *trace.Workload, s *subset.Subset, pm gpu.PowerModel, cfgs []gpu.Config) (EnergyResult, error) {
	return RunEnergyParallel(context.Background(), w, s, pm, cfgs, 0)
}

// RunEnergyParallel is RunEnergy with cancellation and at most workers
// goroutines (<= 0 selects GOMAXPROCS), one config per task. The
// min-EDP argmin is taken sequentially over the points in grid order,
// so the decision is bit-identical at any worker count.
func RunEnergyParallel(ctx context.Context, w *trace.Workload, s *subset.Subset, pm gpu.PowerModel, cfgs []gpu.Config, workers int) (EnergyResult, error) {
	if err := pm.Validate(); err != nil {
		return EnergyResult{}, err
	}
	if len(cfgs) < 2 {
		return EnergyResult{}, fmt.Errorf("sweep: need at least 2 configs, have %d", len(cfgs))
	}
	base, err := gpu.NewSimulator(cfgs[0], w)
	if err != nil {
		return EnergyResult{}, err
	}
	points, err := parallel.MapSlice(ctx, workers, cfgs, func(ctx context.Context, i int, cfg gpu.Config) (EnergyPoint, error) {
		sim, priced, err := PriceConfig(ctx, base, w, cfg, i, len(cfgs))
		if err != nil {
			return EnergyPoint{}, err
		}
		pe := pm.Energy(cfg, priced.Totals)

		tn, cn, mn, tb := s.EstimateParentTotals(sim)
		se := pm.Energy(cfg, gpu.Totals{TotalNs: tn, ComputeNs: cn, MemoryNs: mn, TrafficBytes: tb})

		return EnergyPoint{
			Config: cfg, ParentNs: priced.TotalNs, SubsetNs: tn,
			ParentEnergy: pe, SubsetEnergy: se,
		}, nil
	})
	if err != nil {
		return EnergyResult{}, err
	}
	res := EnergyResult{Points: points}
	parentEDP := make([]float64, len(cfgs))
	subsetEDP := make([]float64, len(cfgs))
	for i, p := range points {
		parentEDP[i] = p.ParentEnergy.EDPJs
		subsetEDP[i] = p.SubsetEnergy.EDPJs
		if parentEDP[i] < parentEDP[res.BestByParentEDP] {
			res.BestByParentEDP = i
		}
		if subsetEDP[i] < subsetEDP[res.BestBySubsetEDP] {
			res.BestBySubsetEDP = i
		}
	}
	res.Agreement = res.BestByParentEDP == res.BestBySubsetEDP
	res.EDPCorrelation = dcmath.Pearson(
		metrics.Speedups(parentEDP, 0), metrics.Speedups(subsetEDP, 0))
	return res, nil
}
