package sweep

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/subset"
)

func TestRunEnergySweep(t *testing.T) {
	w, s := sweepGame(t)
	pm := gpu.DefaultPowerModel()
	cfgs := CoreClockSweep(gpu.BaseConfig(), []float64{0.5, 1.0, 1.5, 2.0})
	res, err := RunEnergy(w, s, pm, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i, p := range res.Points {
		if p.ParentEnergy.TotalJ <= 0 || p.SubsetEnergy.TotalJ <= 0 {
			t.Fatalf("point %d: non-positive energy", i)
		}
		// Subset reconstruction should land near the parent's energy.
		rel := math.Abs(p.SubsetEnergy.TotalJ-p.ParentEnergy.TotalJ) / p.ParentEnergy.TotalJ
		if rel > 0.10 {
			t.Errorf("point %d: subset energy off by %.1f%%", i, rel*100)
		}
	}
	if res.EDPCorrelation < 0.99 {
		t.Errorf("EDP correlation = %v", res.EDPCorrelation)
	}
	if !res.Agreement {
		t.Errorf("EDP decision disagreement: parent %d, subset %d", res.BestByParentEDP, res.BestBySubsetEDP)
	}
}

func TestRunEnergyEDPNotMonotone(t *testing.T) {
	// EDP should have an interior structure: the fastest clock pays
	// superlinear energy, the slowest pays delay. Verify the min-EDP
	// pick is not always simply the fastest config by checking that
	// energy rises with clock even as delay falls.
	w, s := sweepGame(t)
	pm := gpu.DefaultPowerModel()
	cfgs := CoreClockSweep(gpu.BaseConfig(), []float64{0.5, 2.0})
	res, err := RunEnergy(w, s, pm, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := res.Points[0], res.Points[1]
	if fast.ParentNs >= slow.ParentNs {
		t.Error("faster clock not faster")
	}
	if fast.ParentEnergy.CoreJ <= slow.ParentEnergy.CoreJ {
		t.Error("faster clock should burn more core energy (DVFS)")
	}
}

func TestRunEnergyValidation(t *testing.T) {
	w, s := sweepGame(t)
	bad := gpu.DefaultPowerModel()
	bad.CoreDynW = 0
	if _, err := RunEnergy(w, s, bad, CoreClockSweep(gpu.BaseConfig(), []float64{0.5, 1})); err == nil {
		t.Error("invalid power model accepted")
	}
	if _, err := RunEnergy(w, s, gpu.DefaultPowerModel(), CoreClockSweep(gpu.BaseConfig(), []float64{1})); err == nil {
		t.Error("single config accepted")
	}
}

func TestEstimateParentTotalsTracksRun(t *testing.T) {
	w, s := sweepGame(t)
	sim, err := gpu.NewSimulator(gpu.BaseConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	_, parent := sim.RunTotals()
	tn, cn, mn, tb := s.EstimateParentTotals(sim)
	check := func(name string, got, want float64) {
		if want <= 0 {
			t.Fatalf("%s: parent total not positive", name)
		}
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("%s: subset estimate off by %.1f%% (%v vs %v)", name, rel*100, got, want)
		}
	}
	check("TotalNs", tn, parent.TotalNs)
	check("ComputeNs", cn, parent.ComputeNs)
	check("MemoryNs", mn, parent.MemoryNs)
	check("TrafficBytes", tb, parent.TrafficBytes)
}

var _ subset.TotalsOracle = (*gpu.Simulator)(nil)
