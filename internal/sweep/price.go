package sweep

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/gpu"
	"repro/internal/trace"
)

// PricedParent is the cacheable product of pricing a parent workload
// on one configuration: per-frame and total nanoseconds plus the
// aggregate totals the power model consumes. Config.Name is not part
// of it — the cache key uses the config's cost-model fingerprint, so
// two differently-named but identically-priced configs share one
// entry.
type PricedParent struct {
	FrameNs []float64
	TotalNs float64
	Totals  gpu.Totals
}

// PriceKey is the content address of PriceParent's product: the cache
// key under which pricing workload fp on cfg is stored. It is exported
// because the shard layer claims and resolves distributed work by
// exactly this key — a worker and the sequential path must always
// agree on the address or sharded runs would recompute (or worse,
// miss) the sequential path's entries.
func PriceKey(fp trace.Fingerprint, cfg gpu.Config) cache.Key {
	cfgFp := cfg.Fingerprint()
	return cache.NewKey("sweep.price", gpu.ModelVersion).
		Bytes(fp[:]).
		Bytes(cfgFp[:]).
		Sum()
}

// PriceParent prices every frame of w on the simulator, served
// through the result cache when ctx carries a binding
// (cache.WithWorkload) for w. The key is PriceKey (workload
// fingerprint, config cost-model fingerprint, gpu.ModelVersion); a hit
// skips the full per-draw pricing pass — the dominant cost of a grid
// sweep. Without a binding it prices directly. sim must have been
// built on w with cfg; the float accumulation order matches
// Simulator.Run exactly, so cached and direct pricing are
// bit-identical.
func PriceParent(ctx context.Context, sim *gpu.Simulator, w *trace.Workload, cfg gpu.Config) (PricedParent, error) {
	c, fp, ok := cache.ForWorkload(ctx)
	if !ok {
		return priceParent(ctx, sim, w)
	}
	return cache.GetOrCompute(ctx, c, PriceKey(fp, cfg), func() (PricedParent, error) {
		return priceParent(ctx, sim, w)
	})
}

// PriceConfig is the one per-config setup path every grid consumer
// shares: derive the per-config simulator from base (skipping
// re-validation) and price the parent on it through the result cache
// when ctx carries one. RunParallel, RunEnergyParallel and the shard
// worker all go through it, so a distributed shard can never drift
// from the sequential path's setup or fold order. i and n only shape
// the error context ("config i+1/n").
func PriceConfig(ctx context.Context, base *gpu.Simulator, w *trace.Workload, cfg gpu.Config, i, n int) (*gpu.Simulator, PricedParent, error) {
	sim, err := base.WithConfig(cfg)
	if err != nil {
		return nil, PricedParent{}, err
	}
	priced, err := PriceParent(ctx, sim, w, cfg)
	if err != nil {
		return nil, PricedParent{}, fmt.Errorf("sweep: config %d/%d: %w", i+1, n, err)
	}
	return sim, priced, nil
}

// priceParent is one full pricing pass with per-frame cancellation.
// Per-frame times sum draws in order and the total sums frames in
// order — the same accumulation as Simulator.RunContext and RunTotals.
func priceParent(ctx context.Context, sim *gpu.Simulator, w *trace.Workload) (PricedParent, error) {
	p := PricedParent{FrameNs: make([]float64, len(w.Frames))}
	for i := range w.Frames {
		if err := ctx.Err(); err != nil {
			return PricedParent{}, fmt.Errorf("sweep: pricing canceled at frame %d/%d: %w", i, len(w.Frames), err)
		}
		f := &w.Frames[i]
		var frameNs float64
		for di := range f.Draws {
			tn, cn, mn, tb := sim.DrawTotals(&f.Draws[di])
			frameNs += tn
			// Totals folds per draw (as Simulator.RunTotals does) while
			// TotalNs folds per frame (as Simulator.RunContext does), so
			// both views are bit-identical to their uncached originals.
			p.Totals.TotalNs += tn
			p.Totals.ComputeNs += cn
			p.Totals.MemoryNs += mn
			p.Totals.TrafficBytes += tb
		}
		p.FrameNs[i] = frameNs
		p.TotalNs += frameNs
	}
	return p, nil
}

// RunResult converts the priced parent back to the simulator-level
// result shape, restoring the config name the cache key omits.
func (p PricedParent) RunResult(configName string) gpu.RunResult {
	return gpu.RunResult{ConfigName: configName, FrameNs: p.FrameNs, TotalNs: p.TotalNs}
}
