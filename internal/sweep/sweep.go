// Package sweep runs architecture pathfinding studies: it prices a
// parent workload and its subset across grids of GPU configurations
// and quantifies how faithfully the subset reproduces the parent's
// scaling behaviour and design decisions.
//
// This is the consumer side of the paper: the entire point of workload
// subsetting is that these sweeps become ~100x cheaper when only the
// subset is simulated.
package sweep

import (
	"context"
	"fmt"

	"repro/internal/dcmath"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/subset"
	"repro/internal/trace"
)

// DefaultCoreClocks returns the core-frequency sweep of the validation
// experiment (E8): 0.4-2.0 GHz in 9 points.
func DefaultCoreClocks() []float64 {
	return []float64{0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
}

// DefaultMemClocks returns the memory-frequency sweep (E11).
func DefaultMemClocks() []float64 {
	return []float64{0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}
}

// CoreClockSweep derives one config per core clock.
func CoreClockSweep(base gpu.Config, clocks []float64) []gpu.Config {
	out := make([]gpu.Config, len(clocks))
	for i, c := range clocks {
		out[i] = base.WithCoreClock(c)
	}
	return out
}

// MemClockSweep derives one config per memory clock.
func MemClockSweep(base gpu.Config, clocks []float64) []gpu.Config {
	out := make([]gpu.Config, len(clocks))
	for i, c := range clocks {
		out[i] = base.WithMemClock(c)
	}
	return out
}

// Grid derives the cross product of core and memory clocks — the
// pathfinding design space of E12.
func Grid(base gpu.Config, coreClocks, memClocks []float64) []gpu.Config {
	out := make([]gpu.Config, 0, len(coreClocks)*len(memClocks))
	for _, cc := range coreClocks {
		for _, mc := range memClocks {
			out = append(out, base.WithCoreClock(cc).WithMemClock(mc))
		}
	}
	return out
}

// Point is one configuration's measurement.
type Point struct {
	Config   gpu.Config
	ParentNs float64
	SubsetNs float64 // subset's reconstruction of the parent total
}

// Result is a completed sweep.
type Result struct {
	Points []Point
	// ParentSpeedups/SubsetSpeedups are relative to the first point.
	ParentSpeedups []float64
	SubsetSpeedups []float64
	// Correlation is the Pearson correlation of the two speedup curves
	// (the paper's r >= 0.997 validation statistic).
	Correlation float64
	// RankCorrelation is the Spearman correlation of raw runtimes —
	// does the subset order the configs like the parent?
	RankCorrelation float64
}

// Run prices the parent and the subset's parent-estimate on every
// config.
func Run(w *trace.Workload, s *subset.Subset, cfgs []gpu.Config) (Result, error) {
	return RunContext(context.Background(), w, s, cfgs)
}

// RunContext is Run with cancellation, fanning out across GOMAXPROCS
// workers; use RunParallel to bound the fan-out.
func RunContext(ctx context.Context, w *trace.Workload, s *subset.Subset, cfgs []gpu.Config) (Result, error) {
	return RunParallel(ctx, w, s, cfgs, 0)
}

// RunParallel prices the grid with at most workers goroutines
// (<= 0 selects GOMAXPROCS), one configuration per task: pricing a
// large grid on a long parent is the most expensive loop in the
// system, and every configuration's pricing is independent — each task
// builds its own simulator and writes only its own grid point. The
// correlation statistics are folded sequentially over the points in
// grid order, so the Result is bit-identical at any worker count.
// Cancellation is checked once per parent frame inside each pricing
// task.
func RunParallel(ctx context.Context, w *trace.Workload, s *subset.Subset, cfgs []gpu.Config, workers int) (Result, error) {
	if len(cfgs) < 2 {
		return Result{}, fmt.Errorf("sweep: need at least 2 configs, have %d", len(cfgs))
	}
	ctx, sp := obs.StartSpan(ctx, "validation-sweep")
	defer sp.End()
	sp.AddItems(int64(len(cfgs)))
	sp.SetWorkers(parallel.Workers(workers))
	obs.RunFromContext(ctx).Metrics().Counter("sweep.configs_priced").Add(int64(len(cfgs)))
	base, err := gpu.NewSimulator(cfgs[0], w)
	if err != nil {
		return Result{}, err
	}
	points, err := parallel.MapSlice(ctx, workers, cfgs, func(ctx context.Context, i int, cfg gpu.Config) (Point, error) {
		// Parent pricing — the dominant cost — goes through the result
		// cache when ctx carries one; the subset reconstruction is ~100x
		// cheaper and always priced fresh.
		sim, priced, err := PriceConfig(ctx, base, w, cfg, i, len(cfgs))
		if err != nil {
			return Point{}, err
		}
		return Point{Config: cfg, ParentNs: priced.TotalNs, SubsetNs: s.EstimateParentNs(sim)}, nil
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Points: points}
	parent := make([]float64, len(cfgs))
	sub := make([]float64, len(cfgs))
	for i, p := range points {
		parent[i] = p.ParentNs
		sub[i] = p.SubsetNs
	}
	res.ParentSpeedups = metrics.Speedups(parent, 0)
	res.SubsetSpeedups = metrics.Speedups(sub, 0)
	res.Correlation = metrics.CurveCorrelation(res.ParentSpeedups, res.SubsetSpeedups)
	res.RankCorrelation = dcmath.Spearman(parent, sub)
	return res, nil
}

// Decision records which config each side would pick (minimum
// runtime) — the pathfinding outcome the subset must preserve.
type Decision struct {
	BestByParent int
	BestBySubset int
	Agreement    bool
}

// Decide extracts the pathfinding decision from a sweep.
func Decide(res Result) Decision {
	var d Decision
	for i, p := range res.Points {
		if p.ParentNs < res.Points[d.BestByParent].ParentNs {
			d.BestByParent = i
		}
		if p.SubsetNs < res.Points[d.BestBySubset].SubsetNs {
			d.BestBySubset = i
		}
	}
	d.Agreement = d.BestByParent == d.BestBySubset
	return d
}

// SubsetOnly prices just the subset across configs — the production
// pathfinding mode where the parent is never simulated. Returns the
// subset's parent-estimates per config.
func SubsetOnly(s *subset.Subset, cfgs []gpu.Config) ([]float64, error) {
	return SubsetOnlyContext(context.Background(), s, cfgs)
}

// SubsetOnlyContext is SubsetOnly with per-config cancellation across
// GOMAXPROCS workers; use SubsetOnlyParallel to bound the fan-out.
func SubsetOnlyContext(ctx context.Context, s *subset.Subset, cfgs []gpu.Config) ([]float64, error) {
	return SubsetOnlyParallel(ctx, s, cfgs, 0)
}

// SubsetOnlyParallel prices the subset on each config with at most
// workers goroutines (<= 0 selects GOMAXPROCS); estimates land in grid
// order.
func SubsetOnlyParallel(ctx context.Context, s *subset.Subset, cfgs []gpu.Config, workers int) ([]float64, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	base, err := gpu.NewSimulator(cfgs[0], s.Parent)
	if err != nil {
		return nil, err
	}
	return parallel.MapSlice(ctx, workers, cfgs, func(_ context.Context, i int, cfg gpu.Config) (float64, error) {
		sim, err := base.WithConfig(cfg)
		if err != nil {
			return 0, err
		}
		return s.EstimateParentNs(sim), nil
	})
}
