package sweep

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/subset"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/tracetest"
)

func sweepGame(t *testing.T) (*trace.Workload, *subset.Subset) {
	t.Helper()
	p := synth.Bioshock1Profile()
	p.Name = "sweeptest"
	p.Frames = 64
	p.MaterialsPerScene = 40
	p.SharedMaterials = 8
	p.Textures = 80
	p.VSPool = 6
	p.PSPool = 16
	w, err := tracetest.CachedWorkload(p, 41)
	if err != nil {
		t.Fatal(err)
	}
	s, err := subset.Build(w, subset.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return w, s
}

func TestSweepConstructors(t *testing.T) {
	base := gpu.BaseConfig()
	cs := CoreClockSweep(base, DefaultCoreClocks())
	if len(cs) != 9 {
		t.Fatalf("core sweep size %d", len(cs))
	}
	for i, c := range cs {
		if c.CoreClockGHz != DefaultCoreClocks()[i] {
			t.Errorf("config %d clock %v", i, c.CoreClockGHz)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
	}
	ms := MemClockSweep(base, DefaultMemClocks())
	if len(ms) != 7 {
		t.Fatalf("mem sweep size %d", len(ms))
	}
	grid := Grid(base, []float64{1, 2}, []float64{0.5, 1, 2})
	if len(grid) != 6 {
		t.Fatalf("grid size %d", len(grid))
	}
	if grid[0].CoreClockGHz != 1 || grid[0].MemClockGHz != 0.5 {
		t.Error("grid order wrong")
	}
}

func TestRunCoreSweep(t *testing.T) {
	w, s := sweepGame(t)
	res, err := Run(w, s, CoreClockSweep(gpu.BaseConfig(), []float64{0.5, 1.0, 2.0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Higher clock must not be slower for either side.
	for i := 1; i < 3; i++ {
		if res.Points[i].ParentNs > res.Points[i-1].ParentNs {
			t.Error("parent slowed down with higher clock")
		}
		if res.Points[i].SubsetNs > res.Points[i-1].SubsetNs {
			t.Error("subset slowed down with higher clock")
		}
	}
	// Speedups are relative to point 0.
	if res.ParentSpeedups[0] != 1 || res.SubsetSpeedups[0] != 1 {
		t.Error("speedups not normalized to first point")
	}
	if res.Correlation < 0.99 {
		t.Errorf("correlation = %v", res.Correlation)
	}
	if res.RankCorrelation < 0.99 {
		t.Errorf("rank correlation = %v", res.RankCorrelation)
	}
}

func TestRunNeedsTwoConfigs(t *testing.T) {
	w, s := sweepGame(t)
	if _, err := Run(w, s, CoreClockSweep(gpu.BaseConfig(), []float64{1.0})); err == nil {
		t.Error("single-config sweep accepted")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	w, s := sweepGame(t)
	bad := gpu.BaseConfig()
	bad.CoreClockGHz = -1
	if _, err := Run(w, s, []gpu.Config{bad, gpu.BaseConfig()}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDecide(t *testing.T) {
	res := Result{Points: []Point{
		{ParentNs: 100, SubsetNs: 95},
		{ParentNs: 80, SubsetNs: 78},
		{ParentNs: 120, SubsetNs: 130},
	}}
	d := Decide(res)
	if d.BestByParent != 1 || d.BestBySubset != 1 || !d.Agreement {
		t.Errorf("decision = %+v", d)
	}
	res.Points[2].SubsetNs = 10 // subset now disagrees
	d = Decide(res)
	if d.BestBySubset != 2 || d.Agreement {
		t.Errorf("decision = %+v", d)
	}
}

func TestDecisionAgreementOnRealSweep(t *testing.T) {
	w, s := sweepGame(t)
	grid := Grid(gpu.BaseConfig(), []float64{0.5, 1.0, 2.0}, []float64{0.5, 1.0})
	res, err := Run(w, s, grid)
	if err != nil {
		t.Fatal(err)
	}
	d := Decide(res)
	if !d.Agreement {
		t.Errorf("subset picked config %d, parent %d", d.BestBySubset, d.BestByParent)
	}
}

func TestSubsetOnlyMatchesRun(t *testing.T) {
	w, s := sweepGame(t)
	cfgs := CoreClockSweep(gpu.BaseConfig(), []float64{0.5, 1.0})
	res, err := Run(w, s, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	only, err := SubsetOnly(s, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range only {
		if math.Abs(only[i]-res.Points[i].SubsetNs) > 1e-6 {
			t.Errorf("point %d: SubsetOnly %v != Run %v", i, only[i], res.Points[i].SubsetNs)
		}
	}
}

func TestMemSweepShapesDiffer(t *testing.T) {
	// Core and memory sweeps must produce different speedup shapes
	// (compute- vs memory-bound sensitivity) — otherwise the two
	// domains are degenerate and E11 is meaningless.
	w, s := sweepGame(t)
	core, err := Run(w, s, CoreClockSweep(gpu.BaseConfig(), []float64{0.5, 1.0, 2.0}))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Run(w, s, MemClockSweep(gpu.BaseConfig(), []float64{0.5, 1.0, 2.0}))
	if err != nil {
		t.Fatal(err)
	}
	coreGain := core.ParentSpeedups[2]
	memGain := mem.ParentSpeedups[2]
	if math.Abs(coreGain-memGain) < 0.02 {
		t.Errorf("core gain %v ~= mem gain %v; domains degenerate", coreGain, memGain)
	}
}
