package synth

import (
	"fmt"
	"math"

	"repro/internal/dcmath"
	"repro/internal/shader"
	"repro/internal/trace"
)

// material is one engine-level material/batch template. All draws of a
// material are near-duplicates of its template — the redundancy
// draw-call clustering exploits.
type material struct {
	id          uint32
	vs, ps      shader.ID
	textures    []trace.TextureID
	rt          trace.RTID
	topo        trace.Topology
	vertexBase  float64
	coverage    float64
	overdraw    float64
	texLocality float64
	blend       bool
	depth       bool
	instances   int
	sigmaV      float64 // per-draw vertex-count jitter
	sigmaC      float64 // per-draw coverage jitter (screen-space is steadier)
	rate        float64 // mean draws per frame
}

// Generate builds a synthetic workload from the profile,
// deterministically from seed. The result is validated before return.
func Generate(p Profile, seed uint64) (*trace.Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := dcmath.NewRNG(seed)
	rngTex := root.Split(1)
	rngShader := root.Split(2)
	rngMat := root.Split(3)
	rngFrame := root.Split(4)

	textures := genTextures(rngTex, p.Textures)
	rts := []trace.RenderTarget{
		{Width: p.Width, Height: p.Height, BytesPerPixel: 4, HasDepth: true},
		{Width: 1024, Height: 1024, BytesPerPixel: 4, HasDepth: true}, // shadow map
	}

	reg := shader.NewRegistry()
	vsPool := make([]shader.ID, p.VSPool)
	for i := range vsPool {
		prog, err := shader.Generate(reg, rngShader, fmt.Sprintf("%s.vs%d", p.Name, i), shader.DefaultVertexParams())
		if err != nil {
			return nil, err
		}
		vsPool[i] = prog.ID
	}
	psPool := make([]shader.ID, p.PSPool)
	for i := range psPool {
		prog, err := shader.Generate(reg, rngShader, fmt.Sprintf("%s.ps%d", p.Name, i), shader.DefaultPixelParams())
		if err != nil {
			return nil, err
		}
		psPool[i] = prog.ID
	}

	// Scene material libraries. Each scene draws its pixel shaders from
	// a sliding window over the pool so neighbouring scenes overlap a
	// little but no two scenes share a full shader set — this is what
	// makes shader vectors discriminate scenes.
	var nextMat uint32 = 1
	sceneLibs := make([][]material, p.NumScenes)
	window := p.PSPool / 2
	if window < 4 {
		window = 4
	}
	for s := 0; s < p.NumScenes; s++ {
		lo := 0
		if p.NumScenes > 1 {
			lo = s * (p.PSPool - window) / (p.NumScenes - 1)
		}
		lib := make([]material, p.MaterialsPerScene)
		for i := range lib {
			lib[i] = genMaterial(rngMat, p, &nextMat, reg, vsPool, psPool[lo:lo+window], textures)
		}
		sceneLibs[s] = lib
	}
	shared := make([]material, p.SharedMaterials)
	for i := range shared {
		shared[i] = genMaterial(rngMat, p, &nextMat, reg, vsPool, psPool, textures)
	}

	// Tile the script to the requested frame count.
	scenes := make([]int, 0, p.Frames)
	for len(scenes) < p.Frames {
		for _, seg := range p.Script {
			for k := 0; k < seg.Frames && len(scenes) < p.Frames; k++ {
				scenes = append(scenes, seg.Scene)
			}
		}
	}

	frames := make([]trace.Frame, p.Frames)
	for fi := range frames {
		s := scenes[fi]
		frames[fi] = genFrame(rngFrame, p, sceneLibs[s], shared, fmt.Sprintf("scene%d", s))
	}

	w := &trace.Workload{
		Name:          p.Name,
		Frames:        frames,
		Shaders:       reg,
		Textures:      textures,
		RenderTargets: rts,
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated workload invalid: %w", err)
	}
	return w, nil
}

// genTextures builds a pool of power-of-two textures with a realistic
// size spread (64..2048, biased small).
func genTextures(rng *dcmath.RNG, n int) []trace.Texture {
	texs := make([]trace.Texture, n)
	for i := range texs {
		// log2 dim in [6, 11], biased toward 8 (256x256).
		k := 6 + int(dcmath.Clamp(rng.Normal(2.2, 1.2), 0, 5))
		dim := 1 << k
		levels := k + 1
		texs[i] = trace.Texture{Width: dim, Height: dim, BytesPerTexel: 4, MipLevels: levels}
	}
	return texs
}

// genMaterial draws one material template from the profile's
// distributions.
func genMaterial(rng *dcmath.RNG, p Profile, next *uint32, reg *shader.Registry,
	vsPool, psPool []shader.ID, textures []trace.Texture) material {

	m := material{id: *next}
	*next++
	m.vs = vsPool[rng.Intn(len(vsPool))]
	m.ps = psPool[rng.Intn(len(psPool))]

	// Bind a texture to every slot the chosen pixel shader samples.
	slots := reg.MustLookup(m.ps).TextureSlots()
	maxSlot := -1
	for _, s := range slots {
		if s > maxSlot {
			maxSlot = s
		}
	}
	if maxSlot >= 0 {
		m.textures = make([]trace.TextureID, maxSlot+1)
		for _, s := range slots {
			m.textures[s] = trace.TextureID(rng.Intn(len(textures)) + 1)
		}
	}

	// ~12% of draws go to the shadow pass.
	m.rt = 1
	if rng.Bool(0.12) {
		m.rt = 2
	}
	m.topo = trace.TriangleList
	if rng.Bool(0.15) {
		m.topo = trace.TriangleStrip
	}
	m.vertexBase = dcmath.Clamp(rng.LogNormal(math.Log(600), 1.5), 3, 60000)
	m.coverage = dcmath.Clamp(rng.LogNormal(math.Log(0.002), 1.5), 1e-5, 0.25)
	m.overdraw = 1 + rng.Exp(2.5)           // mean 1.4
	m.texLocality = 0.3 + 0.6*rng.Float64() // (0.3, 0.9)
	m.blend = rng.Bool(0.12)
	m.depth = !m.blend || rng.Bool(0.5)
	m.instances = 1
	if rng.Bool(0.05) {
		m.instances = 2 + rng.Intn(18)
	}
	m.sigmaV = p.JitterSigma
	m.sigmaC = 0.4 * p.JitterSigma // batches re-cover similar screen area frame to frame
	if rng.Bool(p.UnstableFrac) {
		// Particles, transparents, post effects: geometry is stable
		// (same emitter mesh) but screen coverage is erratic. Coverage
		// is one feature dimension yet the dominant cost driver, so
		// these materials cluster with their siblings while their
		// clusters mispredict — the cluster outliers the paper counts.
		m.sigmaC = p.UnstableSigma
	}
	// Heavy-tailed per-frame draw rate with the configured mean.
	m.rate = 1 + rng.Exp(1/(p.MeanDrawsPerMaterial-1+1e-9))
	return m
}

// genFrame renders one frame: every material of the scene (plus the
// shared set) submits a jittered batch of draws.
func genFrame(rng *dcmath.RNG, p Profile, lib, shared []material, scene string) trace.Frame {
	est := int(float64(len(lib)+len(shared)) * p.MeanDrawsPerMaterial)
	draws := make([]trace.DrawCall, 0, est)
	emit := func(m *material) {
		k := int(math.Round(m.rate * rng.LogNormal(0, 0.25)))
		if k < 1 {
			k = 1
		}
		for i := 0; i < k; i++ {
			jitterV := rng.LogNormal(0, m.sigmaV)
			jitterC := rng.LogNormal(0, m.sigmaC)
			draws = append(draws, trace.DrawCall{
				VertexCount:   dcmath.ClampInt(int(m.vertexBase*jitterV), 3, 200000),
				InstanceCount: m.instances,
				Topology:      m.topo,
				VS:            m.vs,
				PS:            m.ps,
				Textures:      m.textures,
				RT:            m.rt,
				BlendEnable:   m.blend,
				DepthEnable:   m.depth,
				CoverageFrac:  dcmath.Clamp(m.coverage*jitterC, 1e-6, 1),
				Overdraw:      m.overdraw,
				TexLocality:   m.texLocality,
				MaterialID:    m.id,
			})
		}
	}
	for i := range lib {
		emit(&lib[i])
	}
	for i := range shared {
		emit(&shared[i])
	}
	return trace.Frame{Scene: scene, Draws: draws}
}

// BioshockSuite generates the full three-game corpus (717 frames,
// ~828K draw calls) deterministically from seed.
func BioshockSuite(seed uint64) ([]*trace.Workload, error) {
	profiles := SuiteProfiles()
	out := make([]*trace.Workload, len(profiles))
	for i, p := range profiles {
		w, err := Generate(p, seed+uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}
