package synth

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// fingerprint folds the structural content of a workload into a stable
// 64-bit hash. It covers everything the experiments depend on: draw
// geometry, bound state, screen-space parameters and frame scenes.
func fingerprint(t *testing.T, p Profile, seed uint64) uint64 {
	t.Helper()
	w, err := Generate(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for fi := range w.Frames {
		f := &w.Frames[fi]
		fmt.Fprintf(h, "F%d:%s;", fi, f.Scene)
		for di := range f.Draws {
			d := &f.Draws[di]
			fmt.Fprintf(h, "%d,%d,%d,%d,%d,%d,%v,%v,%v,%v,%v,%d;",
				d.VertexCount, d.InstanceCount, d.Topology, d.VS, d.PS, d.RT,
				d.BlendEnable, d.DepthEnable, d.CoverageFrac, d.Overdraw,
				d.TexLocality, d.MaterialID)
		}
	}
	return h.Sum64()
}

// TestGoldenFingerprint pins the generator's output bit-for-bit. If
// this test fails, the generator's behaviour changed: every number in
// EXPERIMENTS.md needs regeneration, and the change must be deliberate.
// Update the constant only together with a fresh `cmd/experiments` run.
func TestGoldenFingerprint(t *testing.T) {
	p := Bioshock1Profile()
	p.Frames = 8
	p.MaterialsPerScene = 30
	p.SharedMaterials = 6
	p.Textures = 50
	p.VSPool = 4
	p.PSPool = 12

	got := fingerprint(t, p, 42)
	const golden = 0x4509bc956b623c3d
	if got != golden {
		t.Errorf("generator output changed: fingerprint %#x, golden %#x", got, golden)
	}
}

// TestFingerprintSensitive sanity-checks the fingerprint itself: a
// different seed must hash differently.
func TestFingerprintSensitive(t *testing.T) {
	p := Bioshock1Profile()
	p.Frames = 4
	p.MaterialsPerScene = 20
	p.SharedMaterials = 4
	p.Textures = 40
	p.VSPool = 4
	p.PSPool = 8
	if fingerprint(t, p, 1) == fingerprint(t, p, 2) {
		t.Error("fingerprint insensitive to seed")
	}
}
