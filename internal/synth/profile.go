// Package synth generates synthetic 3D workloads with the statistical
// structure of captured game traces.
//
// The paper's corpus is proprietary D3D captures of the BioShock
// series (717 frames, ~828K draw calls). What the subsetting
// methodology actually exploits in those captures is structural, not
// content-specific:
//
//   - engines batch draws by material, so a frame contains many draws
//     that are near-duplicates of each other (this is what makes
//     draw-call clustering efficient);
//   - material populations are heavy-tailed: a few materials are drawn
//     dozens of times per frame, most once or twice;
//   - games revisit content — scene loops, alternating combat and
//     traversal — so frame intervals repeat (this is what makes phase
//     detection work);
//   - a small fraction of draws are erratic (particles, post effects)
//     whose cost varies even within a material.
//
// This package reproduces exactly those properties with per-game
// profiles, deterministically from a seed.
package synth

import "fmt"

// Segment is one run of frames rendered from a single scene.
type Segment struct {
	Scene  int // index into the profile's scenes
	Frames int
}

// Profile describes one synthetic game. Use the Bioshock*Profile
// constructors for the paper corpus or build custom profiles for new
// studies.
type Profile struct {
	Name string

	// Frames is the total frame count; the Script is tiled (and
	// truncated) to reach it.
	Frames int

	// NumScenes is the number of distinct scenes (content regions).
	// Scene names are generated as "scene0"... and recorded as frame
	// metadata for evaluation.
	NumScenes int

	// Script is the scene sequence before tiling. A script shorter than
	// Frames repeats — that repetition is the phase structure the phase
	// detector must find.
	Script []Segment

	// MaterialsPerScene is the size of each scene's material library.
	// SharedMaterials are drawn every frame regardless of scene (HUD,
	// post-processing, sky).
	MaterialsPerScene int
	SharedMaterials   int

	// MeanDrawsPerMaterial controls per-frame material repetition via a
	// heavy-tailed draw-count distribution (>= 1 draw per present
	// material per frame).
	MeanDrawsPerMaterial float64

	// JitterSigma is the lognormal sigma applied per draw to vertex
	// count and coverage of stable materials. UnstableFrac of materials
	// instead jitter with UnstableSigma (particles, effects) — these
	// are the source of cluster outliers.
	JitterSigma   float64
	UnstableFrac  float64
	UnstableSigma float64

	// Resource pool sizes.
	VSPool   int
	PSPool   int
	Textures int

	// Render resolution of the main target.
	Width, Height int
}

// Validate reports the first structural problem with the profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("synth: profile has empty name")
	case p.Frames <= 0:
		return fmt.Errorf("synth: %s: frames %d <= 0", p.Name, p.Frames)
	case p.NumScenes <= 0:
		return fmt.Errorf("synth: %s: scenes %d <= 0", p.Name, p.NumScenes)
	case len(p.Script) == 0:
		return fmt.Errorf("synth: %s: empty script", p.Name)
	case p.MaterialsPerScene <= 0:
		return fmt.Errorf("synth: %s: materials/scene %d <= 0", p.Name, p.MaterialsPerScene)
	case p.SharedMaterials < 0:
		return fmt.Errorf("synth: %s: shared materials %d < 0", p.Name, p.SharedMaterials)
	case p.MeanDrawsPerMaterial < 1:
		return fmt.Errorf("synth: %s: mean draws/material %v < 1", p.Name, p.MeanDrawsPerMaterial)
	case p.JitterSigma < 0 || p.UnstableSigma < 0:
		return fmt.Errorf("synth: %s: negative jitter sigma", p.Name)
	case p.UnstableFrac < 0 || p.UnstableFrac > 1:
		return fmt.Errorf("synth: %s: unstable fraction %v outside [0, 1]", p.Name, p.UnstableFrac)
	case p.VSPool <= 0 || p.PSPool <= 0 || p.Textures <= 0:
		return fmt.Errorf("synth: %s: resource pools must be positive", p.Name)
	case p.Width <= 0 || p.Height <= 0:
		return fmt.Errorf("synth: %s: resolution %dx%d invalid", p.Name, p.Width, p.Height)
	}
	for i, s := range p.Script {
		if s.Scene < 0 || s.Scene >= p.NumScenes {
			return fmt.Errorf("synth: %s: script segment %d references scene %d of %d", p.Name, i, s.Scene, p.NumScenes)
		}
		if s.Frames <= 0 {
			return fmt.Errorf("synth: %s: script segment %d has %d frames", p.Name, i, s.Frames)
		}
	}
	return nil
}

// ScriptLen returns the frame length of one script iteration.
func (p Profile) ScriptLen() int {
	n := 0
	for _, s := range p.Script {
		n += s.Frames
	}
	return n
}

// Bioshock1Profile models the first game: corridor-heavy pacing, a
// compact shader set, strong A/B scene alternation.
func Bioshock1Profile() Profile {
	return Profile{
		Name:      "bioshock1",
		Frames:    239,
		NumScenes: 4,
		// Segment lengths are multiples of the 4-frame characterization
		// interval, mirroring how captured sequences cut cleanly at
		// content boundaries; phase robustness to misaligned cuts is
		// exercised separately (see the phasestudy example).
		Script: []Segment{
			{Scene: 0, Frames: 12}, {Scene: 1, Frames: 8},
			{Scene: 0, Frames: 12}, {Scene: 2, Frames: 16},
			{Scene: 1, Frames: 8}, {Scene: 3, Frames: 8},
		},
		MaterialsPerScene:    261,
		SharedMaterials:      68,
		MeanDrawsPerMaterial: 2.72,
		JitterSigma:          0.06,
		UnstableFrac:         0.14,
		UnstableSigma:        0.35,
		VSPool:               18,
		PSPool:               56,
		Textures:             700,
		Width:                1280, Height: 720,
	}
}

// Bioshock2Profile models the second game: larger spaces, more
// materials in flight, slightly busier frames.
func Bioshock2Profile() Profile {
	return Profile{
		Name:      "bioshock2",
		Frames:    239,
		NumScenes: 5,
		Script: []Segment{
			{Scene: 0, Frames: 12}, {Scene: 1, Frames: 12},
			{Scene: 2, Frames: 8}, {Scene: 1, Frames: 12},
			{Scene: 3, Frames: 8}, {Scene: 4, Frames: 12},
		},
		MaterialsPerScene:    299,
		SharedMaterials:      78,
		MeanDrawsPerMaterial: 2.92,
		JitterSigma:          0.07,
		UnstableFrac:         0.13,
		UnstableSigma:        0.35,
		VSPool:               22,
		PSPool:               64,
		Textures:             850,
		Width:                1280, Height: 720,
	}
}

// BioshockInfiniteProfile models the third game: open vistas, the
// heaviest frames and the richest shader library of the series.
func BioshockInfiniteProfile() Profile {
	return Profile{
		Name:      "bioshockinf",
		Frames:    239,
		NumScenes: 6,
		Script: []Segment{
			{Scene: 0, Frames: 16}, {Scene: 1, Frames: 8},
			{Scene: 2, Frames: 12}, {Scene: 0, Frames: 12},
			{Scene: 3, Frames: 8}, {Scene: 4, Frames: 12},
			{Scene: 5, Frames: 8},
		},
		MaterialsPerScene:    334,
		SharedMaterials:      88,
		MeanDrawsPerMaterial: 3.22,
		JitterSigma:          0.08,
		UnstableFrac:         0.14,
		UnstableSigma:        0.35,
		VSPool:               26,
		PSPool:               80,
		Textures:             1000,
		Width:                1280, Height: 720,
	}
}

// SuiteProfiles returns the three-game corpus profiles in series order.
func SuiteProfiles() []Profile {
	return []Profile{Bioshock1Profile(), Bioshock2Profile(), BioshockInfiniteProfile()}
}
