package synth

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func smallProfile() Profile {
	p := Bioshock1Profile()
	p.Name = "small"
	p.Frames = 66 // one full script iteration, so every scene appears
	p.MaterialsPerScene = 40
	p.SharedMaterials = 8
	p.Textures = 80
	p.VSPool = 6
	p.PSPool = 16
	return p
}

func TestGenerateValidWorkload(t *testing.T) {
	w, err := Generate(smallProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("generated workload invalid: %v", err)
	}
	if w.NumFrames() != 66 {
		t.Errorf("frames = %d", w.NumFrames())
	}
	if w.NumDraws() == 0 {
		t.Fatal("no draws")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDraws() != b.NumDraws() {
		t.Fatalf("draw counts differ: %d vs %d", a.NumDraws(), b.NumDraws())
	}
	for fi := range a.Frames {
		for di := range a.Frames[fi].Draws {
			da, db := a.Frames[fi].Draws[di], b.Frames[fi].Draws[di]
			if da.VertexCount != db.VertexCount || da.PS != db.PS || da.CoverageFrac != db.CoverageFrac {
				t.Fatalf("frame %d draw %d differs between runs", fi, di)
			}
		}
	}
	c, err := Generate(smallProfile(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDraws() == a.NumDraws() && c.Frames[0].Draws[0].VertexCount == a.Frames[0].Draws[0].VertexCount {
		t.Error("different seeds produced identical output")
	}
}

func TestGenerateDrawVolume(t *testing.T) {
	p := smallProfile()
	w, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	perFrame := float64(w.NumDraws()) / float64(w.NumFrames())
	want := float64(p.MaterialsPerScene+p.SharedMaterials) * p.MeanDrawsPerMaterial
	if perFrame < want*0.7 || perFrame > want*1.3 {
		t.Errorf("draws/frame = %v, want ~%v", perFrame, want)
	}
}

func TestGenerateMaterialRedundancy(t *testing.T) {
	// Draws of one material must be near-duplicates: same shaders and
	// modest vertex-count spread for stable materials.
	w, err := Generate(smallProfile(), 5)
	if err != nil {
		t.Fatal(err)
	}
	f := w.Frames[0]
	byMat := map[uint32][]trace.DrawCall{}
	for _, d := range f.Draws {
		byMat[d.MaterialID] = append(byMat[d.MaterialID], d)
	}
	multi := 0
	for _, draws := range byMat {
		if len(draws) < 2 {
			continue
		}
		multi++
		for _, d := range draws[1:] {
			if d.PS != draws[0].PS || d.VS != draws[0].VS || d.RT != draws[0].RT {
				t.Fatal("draws of one material differ in bound state")
			}
		}
	}
	if multi == 0 {
		t.Error("no material drawn more than once; redundancy missing")
	}
}

func TestGenerateSceneStructure(t *testing.T) {
	p := smallProfile()
	w, err := Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Script: scene0 x12, scene1 x10, ... -> first 12 frames scene0.
	for i := 0; i < 12; i++ {
		if w.Frames[i].Scene != "scene0" {
			t.Fatalf("frame %d scene = %q, want scene0", i, w.Frames[i].Scene)
		}
	}
	if w.Frames[12].Scene != "scene1" {
		t.Errorf("frame 12 scene = %q, want scene1", w.Frames[12].Scene)
	}
	// Scenes must differ in pixel-shader population: compare PS sets of
	// a scene0 frame and a scene3 frame (windows far apart).
	psSet := func(f *trace.Frame) map[uint32]bool {
		s := map[uint32]bool{}
		for _, d := range f.Draws {
			s[uint32(d.PS)] = true
		}
		return s
	}
	var s3 *trace.Frame
	for fi := range w.Frames {
		if w.Frames[fi].Scene == "scene3" {
			s3 = &w.Frames[fi]
			break
		}
	}
	if s3 == nil {
		t.Fatal("script never reached scene3")
	}
	a, b := psSet(&w.Frames[0]), psSet(s3)
	onlyA := 0
	for ps := range a {
		if !b[ps] {
			onlyA++
		}
	}
	if onlyA == 0 {
		t.Error("scene0 and scene3 use identical shader sets; shader vectors cannot discriminate")
	}
}

func TestGenerateRejectsInvalidProfile(t *testing.T) {
	bad := smallProfile()
	bad.Frames = 0
	if _, err := Generate(bad, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestProfileValidate(t *testing.T) {
	mutations := map[string]func(*Profile){
		"empty name":    func(p *Profile) { p.Name = "" },
		"no frames":     func(p *Profile) { p.Frames = 0 },
		"no scenes":     func(p *Profile) { p.NumScenes = 0 },
		"empty script":  func(p *Profile) { p.Script = nil },
		"bad scene ref": func(p *Profile) { p.Script = []Segment{{Scene: 99, Frames: 1}} },
		"zero seg len":  func(p *Profile) { p.Script = []Segment{{Scene: 0, Frames: 0}} },
		"no materials":  func(p *Profile) { p.MaterialsPerScene = 0 },
		"neg shared":    func(p *Profile) { p.SharedMaterials = -1 },
		"low rate":      func(p *Profile) { p.MeanDrawsPerMaterial = 0.5 },
		"neg jitter":    func(p *Profile) { p.JitterSigma = -1 },
		"bad unstable":  func(p *Profile) { p.UnstableFrac = 2 },
		"no shaders":    func(p *Profile) { p.PSPool = 0 },
		"no textures":   func(p *Profile) { p.Textures = 0 },
		"bad res":       func(p *Profile) { p.Width = 0 },
	}
	for name, mutate := range mutations {
		p := Bioshock1Profile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	for _, p := range SuiteProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("suite profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestScriptLen(t *testing.T) {
	p := Bioshock1Profile()
	want := 12 + 8 + 12 + 16 + 8 + 8
	if got := p.ScriptLen(); got != want {
		t.Errorf("ScriptLen = %d, want %d", got, want)
	}
}

func TestSuiteCorpusShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus generation in -short mode")
	}
	suite, err := BioshockSuite(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 3 {
		t.Fatalf("suite games = %d", len(suite))
	}
	frames, draws := 0, 0
	for _, w := range suite {
		frames += w.NumFrames()
		draws += w.NumDraws()
	}
	if frames != 717 {
		t.Errorf("corpus frames = %d, want 717 (paper)", frames)
	}
	// Paper: ~828K draws. The generator is stochastic; accept ±10%.
	if math.Abs(float64(draws)-828000) > 82800 {
		t.Errorf("corpus draws = %d, want 828K +- 10%%", draws)
	}
	names := map[string]bool{}
	for _, w := range suite {
		names[w.Name] = true
	}
	if !names["bioshock1"] || !names["bioshock2"] || !names["bioshockinf"] {
		t.Errorf("suite names = %v", names)
	}
}

func TestUnstableMaterialsCoverageOnlyJitter(t *testing.T) {
	// Unstable (effect) materials jitter in coverage but keep the
	// stable vertex-count sigma: within a frame, a material's draws
	// must share shaders and vary coverage much more than any stable
	// material does — and the generator must actually produce some.
	p := smallProfile()
	p.UnstableFrac = 0.3 // make them common for the test
	w, err := Generate(p, 55)
	if err != nil {
		t.Fatal(err)
	}
	f := w.Frames[0]
	byMat := map[uint32][]trace.DrawCall{}
	for _, d := range f.Draws {
		byMat[d.MaterialID] = append(byMat[d.MaterialID], d)
	}
	highCoverageSpread := 0
	for _, draws := range byMat {
		if len(draws) < 3 {
			continue
		}
		minC, maxC := draws[0].CoverageFrac, draws[0].CoverageFrac
		for _, d := range draws[1:] {
			if d.CoverageFrac < minC {
				minC = d.CoverageFrac
			}
			if d.CoverageFrac > maxC {
				maxC = d.CoverageFrac
			}
		}
		if maxC/minC > 1.5 { // far beyond stable sigmaC (~0.025 lognormal)
			highCoverageSpread++
		}
	}
	if highCoverageSpread == 0 {
		t.Error("no unstable-material coverage spread observed; generator lost its outlier source")
	}
}
