//go:build !race

// Package testutil carries small helpers shared by test files across
// packages.
package testutil

// RaceEnabled reports whether the race detector is compiled in.
// Allocation-count tests skip under the race detector: its
// instrumentation allocates, so AllocsPerRun measures the detector,
// not the code under test.
const RaceEnabled = false
