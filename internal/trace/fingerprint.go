package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Fingerprint is the SHA-256 of a workload's canonical encoding: the
// content-address the result cache keys every derived computation on.
// Two workloads share a fingerprint exactly when every input the
// pipeline reads — frames, draws, shaders, textures, render targets —
// is identical.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint in hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// fingerprintVersion versions the canonical encoding itself. Bump it
// whenever the encoding below changes (field added, order changed), so
// fingerprints from older builds can never alias new ones.
const fingerprintVersion = 1

// fpWriter serializes workload content into a hash with a fixed field
// order and fixed-width integer encoding, so the digest is independent
// of map iteration, pointer values, or encoding-library internals.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) u64(v uint64) {
	binary.BigEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) i(v int)      { w.u64(uint64(int64(v))) }
func (w *fpWriter) f(v float64)  { w.u64(math.Float64bits(v)) }
func (w *fpWriter) str(s string) { w.u64(uint64(len(s))); w.h.Write([]byte(s)) }

func (w *fpWriter) b(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

// Fingerprint computes the workload's content fingerprint in one pass.
// It walks every field the pipeline can read; capture metadata that
// influences output (scene names feed evaluation, material ids feed
// validity scoring) is included. The cost is one linear hash over the
// workload (~100 bytes/draw); callers that need it repeatedly should
// compute it once and pass it down, which is what core does when a
// cache is attached.
func (w *Workload) Fingerprint() Fingerprint {
	fw := &fpWriter{h: sha256.New()}
	fw.u64(fingerprintVersion)
	fw.str(w.Name)

	fw.i(len(w.Textures))
	for _, t := range w.Textures {
		fw.i(t.Width)
		fw.i(t.Height)
		fw.i(t.BytesPerTexel)
		fw.i(t.MipLevels)
	}
	fw.i(len(w.RenderTargets))
	for _, rt := range w.RenderTargets {
		fw.i(rt.Width)
		fw.i(rt.Height)
		fw.i(rt.BytesPerPixel)
		fw.b(rt.HasDepth)
	}
	if w.Shaders == nil {
		fw.i(0)
	} else {
		progs := w.Shaders.Programs() // id order: deterministic
		fw.i(len(progs))
		for _, p := range progs {
			fw.u64(uint64(p.ID))
			fw.u64(uint64(p.Stage))
			fw.str(p.Name)
			fw.i(len(p.Body))
			for _, in := range p.Body {
				fw.u64(uint64(in.Op)<<8 | uint64(in.Slot))
			}
		}
	}

	fw.i(len(w.Frames))
	for fi := range w.Frames {
		f := &w.Frames[fi]
		fw.str(f.Scene)
		fw.i(len(f.Draws))
		for di := range f.Draws {
			d := &f.Draws[di]
			fw.i(d.VertexCount)
			fw.i(d.InstanceCount)
			fw.u64(uint64(d.Topology))
			fw.u64(uint64(d.VS))
			fw.u64(uint64(d.PS))
			fw.i(len(d.Textures))
			for _, tid := range d.Textures {
				fw.u64(uint64(tid))
			}
			fw.u64(uint64(d.RT))
			fw.b(d.BlendEnable)
			fw.b(d.DepthEnable)
			fw.f(d.CoverageFrac)
			fw.f(d.Overdraw)
			fw.f(d.TexLocality)
			fw.u64(uint64(d.MaterialID))
		}
	}

	var fp Fingerprint
	fw.h.Sum(fp[:0])
	return fp
}
