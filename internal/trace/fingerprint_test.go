package trace_test

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/tracetest"
)

func TestFingerprintDeterministic(t *testing.T) {
	a := tracetest.Tiny()
	b := tracetest.Tiny()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical workloads fingerprint differently")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := tracetest.Tiny().Fingerprint()
	cases := map[string]func(*trace.Workload){
		"name":            func(w *trace.Workload) { w.Name += "x" },
		"scene":           func(w *trace.Workload) { w.Frames[0].Scene += "x" },
		"vertex count":    func(w *trace.Workload) { w.Frames[0].Draws[0].VertexCount++ },
		"instance count":  func(w *trace.Workload) { w.Frames[0].Draws[0].InstanceCount++ },
		"coverage":        func(w *trace.Workload) { w.Frames[0].Draws[0].CoverageFrac *= 0.5 },
		"overdraw":        func(w *trace.Workload) { w.Frames[0].Draws[0].Overdraw += 0.25 },
		"tex locality":    func(w *trace.Workload) { w.Frames[0].Draws[0].TexLocality *= 0.5 },
		"blend flag":      func(w *trace.Workload) { w.Frames[0].Draws[0].BlendEnable = !w.Frames[0].Draws[0].BlendEnable },
		"depth flag":      func(w *trace.Workload) { w.Frames[0].Draws[0].DepthEnable = !w.Frames[0].Draws[0].DepthEnable },
		"material":        func(w *trace.Workload) { w.Frames[0].Draws[0].MaterialID++ },
		"texture size":    func(w *trace.Workload) { w.Textures[0].Width *= 2 },
		"texture mips":    func(w *trace.Workload) { w.Textures[0].MipLevels++ },
		"rt size":         func(w *trace.Workload) { w.RenderTargets[0].Width *= 2 },
		"rt depth":        func(w *trace.Workload) { w.RenderTargets[0].HasDepth = !w.RenderTargets[0].HasDepth },
		"dropped draw":    func(w *trace.Workload) { w.Frames[0].Draws = w.Frames[0].Draws[1:] },
		"dropped frame":   func(w *trace.Workload) { w.Frames = w.Frames[1:] },
		"swapped topo":    func(w *trace.Workload) { w.Frames[0].Draws[0].Topology ^= 1 },
		"draw rt binding": func(w *trace.Workload) { w.Frames[0].Draws[0].RT ^= 1 },
		"texture binding": func(w *trace.Workload) {
			ts := w.Frames[0].Draws[0].Textures
			ts[0], ts[1] = ts[1], ts[0]
		},
	}
	for name, mutate := range cases {
		w := tracetest.Tiny()
		mutate(w)
		if w.Fingerprint() == base {
			t.Errorf("%s: mutation left fingerprint unchanged", name)
		}
	}
}

// TestFingerprintFrameBoundaryPrefixFree: moving a draw across a frame
// boundary keeps the same flat draw sequence but must change the
// fingerprint (per-frame draw counts are part of the encoding).
func TestFingerprintFrameBoundaryPrefixFree(t *testing.T) {
	a := tracetest.Tiny()
	b := tracetest.Tiny()
	if len(a.Frames) < 2 || a.Frames[0].Scene != a.Frames[1].Scene {
		t.Fatal("fixture needs two frames with identical scenes")
	}
	// Move the last draw of frame 0 to the front of frame 1.
	d := b.Frames[0].Draws[len(b.Frames[0].Draws)-1]
	b.Frames[0].Draws = b.Frames[0].Draws[:len(b.Frames[0].Draws)-1]
	b.Frames[1].Draws = append([]trace.DrawCall{d}, b.Frames[1].Draws...)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("draw moved across frame boundary did not change fingerprint")
	}
}

func TestFingerprintString(t *testing.T) {
	s := tracetest.Tiny().Fingerprint().String()
	if len(s) != 64 {
		t.Fatalf("hex fingerprint length %d, want 64", len(s))
	}
}
