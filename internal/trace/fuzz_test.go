package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracetest"
)

// FuzzDecode ensures the binary decoder never panics and never
// returns an invalid workload, no matter how the input is mangled.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := tracetest.Tiny().Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a gob stream at all"))
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte{}, valid...)
	for i := 10; i < len(mutated); i += 97 {
		mutated[i] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := w.Validate(); err != nil {
			t.Errorf("Decode returned invalid workload: %v", err)
		}
	})
}

// FuzzStreamDecode does the same for the frame-stream format.
func FuzzStreamDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := trace.EncodeStream(&buf, tracetest.Tiny()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:40])
	f.Add([]byte("junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := trace.NewStreamDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := dec.NextFrame(); err != nil {
				return // EOF or rejection both fine
			}
		}
	})
}
