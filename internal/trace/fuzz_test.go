package trace_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracetest"
)

// FuzzDecode ensures the binary decoder never panics and never
// returns an invalid workload, no matter how the input is mangled.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := tracetest.Tiny().Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a gob stream at all"))
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte{}, valid...)
	for i := 10; i < len(mutated); i += 97 {
		mutated[i] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := w.Validate(); err != nil {
			t.Errorf("Decode returned invalid workload: %v", err)
		}
	})
}

// FuzzStreamDecode does the same for the frame-stream format.
func FuzzStreamDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := trace.EncodeStream(&buf, tracetest.Tiny()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:40])
	f.Add([]byte("junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := trace.NewStreamDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := dec.NextFrame(); err != nil {
				return // EOF or rejection both fine
			}
		}
	})
}

// FuzzStreamV2Resync feeds mutated v2 stream bytes to the resyncing
// lenient reader: it must never panic, never loop forever, and every
// frame it delivers must still pass full validation against the shell.
func FuzzStreamV2Resync(f *testing.F) {
	var buf bytes.Buffer
	if err := trace.EncodeStream(&buf, tracetest.Tiny()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid, 0, byte(0))
	f.Add(valid, 20, byte(0xff))             // damage inside the header record
	f.Add(valid, len(valid)/2, byte(0x01))   // damage mid-stream
	f.Add(valid[:len(valid)-30], 0, byte(0)) // truncated tail
	f.Add([]byte("3DWS\x02junkjunkjunk"), 3, byte(7))
	doubled := append(append([]byte{}, valid...), valid...) // concatenated captures
	f.Add(doubled, 0, byte(0))

	f.Fuzz(func(t *testing.T, data []byte, pos int, mask byte) {
		mutated := append([]byte{}, data...)
		if len(mutated) > 0 {
			mutated[abs(pos)%len(mutated)] ^= mask
		}
		r, err := trace.NewStreamReader(bytes.NewReader(mutated), trace.ReaderOptions{Lenient: true})
		if err != nil {
			return // header unrecoverable: rejecting is fine
		}
		shell := r.Shell()
		for {
			fr, err := r.NextFrame()
			if err != nil {
				// Lenient v2 reading only ever ends in io.EOF.
				if r.Version() == 2 && err != io.EOF {
					t.Fatalf("lenient v2 reader returned %v", err)
				}
				return
			}
			check := *shell
			check.Frames = []trace.Frame{fr}
			if err := check.Validate(); err != nil {
				t.Fatalf("reader delivered invalid frame: %v", err)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
