package trace

import (
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/shader"
	"repro/internal/traceerr"
)

// DefaultMaxDecodeBytes caps how much input Decode/DecodeJSON will
// consume before rejecting it with traceerr.ErrTooLarge — a guard
// against hostile or garbage inputs that would otherwise be buffered
// without bound. DecodeLimited/DecodeJSONLimited take an explicit cap.
const DefaultMaxDecodeBytes int64 = 1 << 30 // 1 GiB

// cappedReader fails with traceerr.ErrTooLarge once more than max
// bytes have been read, and remembers that it did: gob and json may
// rewrap the error, so callers check the flag rather than the chain.
type cappedReader struct {
	r        io.Reader
	left     int64
	exceeded bool
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.left <= 0 {
		c.exceeded = true
		return 0, traceerr.ErrTooLarge
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.r.Read(p)
	c.left -= int64(n)
	return n, err
}

func (c *cappedReader) capErr(err error, max int64) error {
	if c.exceeded || errors.Is(err, traceerr.ErrTooLarge) {
		return fmt.Errorf("trace: input exceeds %d-byte decode cap: %w", max, traceerr.ErrTooLarge)
	}
	return err
}

// wire is the serialization form of Workload. The shader registry has
// unexported bookkeeping, so programs travel as a flat slice and the
// registry is rebuilt on decode.
type wire struct {
	Name          string
	Frames        []Frame
	Shaders       []shader.Program
	Textures      []Texture
	RenderTargets []RenderTarget
}

func (w *Workload) toWire() wire {
	progs := w.Shaders.Programs()
	flat := make([]shader.Program, len(progs))
	for i, p := range progs {
		flat[i] = *p
	}
	return wire{
		Name:          w.Name,
		Frames:        w.Frames,
		Shaders:       flat,
		Textures:      w.Textures,
		RenderTargets: w.RenderTargets,
	}
}

// restoreWire rebuilds the in-memory workload without judging its
// content: the strict path validates afterwards, the lenient path
// sanitizes instead.
func restoreWire(ww wire) (*Workload, error) {
	progs := make([]*shader.Program, len(ww.Shaders))
	for i := range ww.Shaders {
		progs[i] = &ww.Shaders[i]
	}
	reg, err := shader.RestoreRegistry(progs)
	if err != nil {
		return nil, fmt.Errorf("trace: restoring shaders: %w", err)
	}
	return &Workload{
		Name:          ww.Name,
		Frames:        ww.Frames,
		Shaders:       reg,
		Textures:      ww.Textures,
		RenderTargets: ww.RenderTargets,
	}, nil
}

func fromWire(ww wire) (*Workload, error) {
	w, err := restoreWire(ww)
	if err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decoded workload invalid: %w", err)
	}
	return w, nil
}

// fromWireLenient restores and then repairs: invalid draws and
// unusable frames are dropped (accounted in the diagnostics) instead
// of rejecting the whole workload. Structural damage — no shader
// registry, nothing usable surviving — still fails.
func fromWireLenient(ww wire) (*Workload, traceerr.Diagnostics, error) {
	w, err := restoreWire(ww)
	if err != nil {
		return nil, traceerr.Diagnostics{}, err
	}
	diag, err := w.Sanitize()
	if err != nil {
		return nil, diag, err
	}
	return w, diag, nil
}

// Encode writes the workload in the library's binary (gob) format.
func (w *Workload) Encode(out io.Writer) error {
	if err := gob.NewEncoder(out).Encode(w.toWire()); err != nil {
		return fmt.Errorf("trace: encoding workload %q: %w", w.Name, err)
	}
	return nil
}

// Decode reads a workload in binary format and validates it, refusing
// inputs beyond DefaultMaxDecodeBytes with traceerr.ErrTooLarge.
func Decode(in io.Reader) (*Workload, error) {
	return DecodeLimited(in, DefaultMaxDecodeBytes)
}

// DecodeLimited is Decode with an explicit input size cap in bytes
// (<= 0 means DefaultMaxDecodeBytes).
func DecodeLimited(in io.Reader, maxBytes int64) (*Workload, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxDecodeBytes
	}
	capped := &cappedReader{r: in, left: maxBytes}
	var ww wire
	if err := gob.NewDecoder(capped).Decode(&ww); err != nil {
		return nil, fmt.Errorf("trace: decoding workload: %w", capped.capErr(err, maxBytes))
	}
	return fromWire(ww)
}

// DecodeLenient reads a workload in binary format and repairs it
// instead of rejecting it: invalid draws and unusable frames are
// dropped via Sanitize, with the accounting returned — the ingestion
// mode a server exposes to hostile uploads. maxBytes caps the input
// (<= 0 means DefaultMaxDecodeBytes). Undecodable input (bad gob,
// broken shader table, nothing usable surviving) still fails.
func DecodeLenient(in io.Reader, maxBytes int64) (*Workload, traceerr.Diagnostics, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxDecodeBytes
	}
	capped := &cappedReader{r: in, left: maxBytes}
	var ww wire
	if err := gob.NewDecoder(capped).Decode(&ww); err != nil {
		return nil, traceerr.Diagnostics{}, fmt.Errorf("trace: decoding workload: %w", lenientDecodeErr(capped, err, maxBytes))
	}
	return fromWireLenient(ww)
}

// DecodeJSONLenient is DecodeLenient for the JSON encoding.
func DecodeJSONLenient(in io.Reader, maxBytes int64) (*Workload, traceerr.Diagnostics, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxDecodeBytes
	}
	capped := &cappedReader{r: in, left: maxBytes}
	var ww wire
	if err := json.NewDecoder(capped).Decode(&ww); err != nil {
		return nil, traceerr.Diagnostics{}, fmt.Errorf("trace: JSON-decoding workload: %w", lenientDecodeErr(capped, err, maxBytes))
	}
	return fromWireLenient(ww)
}

// lenientDecodeErr classifies a lenient decoder's failure onto the
// taxonomy: size-cap hits stay ErrTooLarge, inputs that ran out are
// ErrTruncated, everything else is ErrCorruptRecord — so ingestion
// layers map any undecodable upload to a typed rejection.
func lenientDecodeErr(capped *cappedReader, err error, maxBytes int64) error {
	if cerr := capped.capErr(err, maxBytes); cerr != err {
		return cerr
	}
	return fmt.Errorf("%w: %v", classifyDecodeErr(err), err)
}

// EncodeJSON writes the workload as indented JSON, for inspection and
// interchange with non-Go tooling.
func (w *Workload) EncodeJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(w.toWire()); err != nil {
		return fmt.Errorf("trace: JSON-encoding workload %q: %w", w.Name, err)
	}
	return nil
}

// DecodeJSON reads a workload in JSON format and validates it,
// refusing inputs beyond DefaultMaxDecodeBytes with
// traceerr.ErrTooLarge.
func DecodeJSON(in io.Reader) (*Workload, error) {
	return DecodeJSONLimited(in, DefaultMaxDecodeBytes)
}

// DecodeJSONLimited is DecodeJSON with an explicit input size cap in
// bytes (<= 0 means DefaultMaxDecodeBytes).
func DecodeJSONLimited(in io.Reader, maxBytes int64) (*Workload, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxDecodeBytes
	}
	capped := &cappedReader{r: in, left: maxBytes}
	var ww wire
	if err := json.NewDecoder(capped).Decode(&ww); err != nil {
		return nil, fmt.Errorf("trace: JSON-decoding workload: %w", capped.capErr(err, maxBytes))
	}
	return fromWire(ww)
}
