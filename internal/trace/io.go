package trace

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/shader"
)

// wire is the serialization form of Workload. The shader registry has
// unexported bookkeeping, so programs travel as a flat slice and the
// registry is rebuilt on decode.
type wire struct {
	Name          string
	Frames        []Frame
	Shaders       []shader.Program
	Textures      []Texture
	RenderTargets []RenderTarget
}

func (w *Workload) toWire() wire {
	progs := w.Shaders.Programs()
	flat := make([]shader.Program, len(progs))
	for i, p := range progs {
		flat[i] = *p
	}
	return wire{
		Name:          w.Name,
		Frames:        w.Frames,
		Shaders:       flat,
		Textures:      w.Textures,
		RenderTargets: w.RenderTargets,
	}
}

func fromWire(ww wire) (*Workload, error) {
	progs := make([]*shader.Program, len(ww.Shaders))
	for i := range ww.Shaders {
		progs[i] = &ww.Shaders[i]
	}
	reg, err := shader.RestoreRegistry(progs)
	if err != nil {
		return nil, fmt.Errorf("trace: restoring shaders: %w", err)
	}
	w := &Workload{
		Name:          ww.Name,
		Frames:        ww.Frames,
		Shaders:       reg,
		Textures:      ww.Textures,
		RenderTargets: ww.RenderTargets,
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("trace: decoded workload invalid: %w", err)
	}
	return w, nil
}

// Encode writes the workload in the library's binary (gob) format.
func (w *Workload) Encode(out io.Writer) error {
	if err := gob.NewEncoder(out).Encode(w.toWire()); err != nil {
		return fmt.Errorf("trace: encoding workload %q: %w", w.Name, err)
	}
	return nil
}

// Decode reads a workload in binary format and validates it.
func Decode(in io.Reader) (*Workload, error) {
	var ww wire
	if err := gob.NewDecoder(in).Decode(&ww); err != nil {
		return nil, fmt.Errorf("trace: decoding workload: %w", err)
	}
	return fromWire(ww)
}

// EncodeJSON writes the workload as indented JSON, for inspection and
// interchange with non-Go tooling.
func (w *Workload) EncodeJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(w.toWire()); err != nil {
		return fmt.Errorf("trace: JSON-encoding workload %q: %w", w.Name, err)
	}
	return nil
}

// DecodeJSON reads a workload in JSON format and validates it.
func DecodeJSON(in io.Reader) (*Workload, error) {
	var ww wire
	if err := json.NewDecoder(in).Decode(&ww); err != nil {
		return nil, fmt.Errorf("trace: JSON-decoding workload: %w", err)
	}
	return fromWire(ww)
}
