package trace_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/traceerr"
	"repro/internal/tracetest"
)

func TestGobRoundTrip(t *testing.T) {
	w := tracetest.Tiny()
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertWorkloadsEqual(t, w, got)
}

func TestJSONRoundTrip(t *testing.T) {
	w := tracetest.Tiny()
	var buf bytes.Buffer
	if err := w.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Name": "tiny"`) {
		t.Error("JSON output missing expected field")
	}
	got, err := trace.DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertWorkloadsEqual(t, w, got)
}

func assertWorkloadsEqual(t *testing.T, want, got *trace.Workload) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("name %q != %q", got.Name, want.Name)
	}
	if got.NumFrames() != want.NumFrames() || got.NumDraws() != want.NumDraws() {
		t.Fatalf("shape mismatch: %d/%d frames, %d/%d draws",
			got.NumFrames(), want.NumFrames(), got.NumDraws(), want.NumDraws())
	}
	for fi := range want.Frames {
		for di := range want.Frames[fi].Draws {
			a, b := want.Frames[fi].Draws[di], got.Frames[fi].Draws[di]
			// Textures is a slice; compare element-wise then blank it
			// for the struct comparison.
			if len(a.Textures) != len(b.Textures) {
				t.Fatalf("frame %d draw %d texture count", fi, di)
			}
			for k := range a.Textures {
				if a.Textures[k] != b.Textures[k] {
					t.Fatalf("frame %d draw %d texture %d", fi, di, k)
				}
			}
			a.Textures, b.Textures = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("frame %d draw %d mismatch:\n%+v\n%+v", fi, di, a, b)
			}
		}
	}
	if got.Shaders.Len() != want.Shaders.Len() {
		t.Fatalf("shader count %d != %d", got.Shaders.Len(), want.Shaders.Len())
	}
	for _, id := range want.Shaders.IDs() {
		wp := want.Shaders.MustLookup(id)
		gp, err := got.Shaders.Lookup(id)
		if err != nil {
			t.Fatalf("shader %d missing after round trip", id)
		}
		if gp.Name != wp.Name || gp.Stage != wp.Stage || len(gp.Body) != len(wp.Body) {
			t.Fatalf("shader %d changed", id)
		}
	}
	if len(got.Textures) != len(want.Textures) || len(got.RenderTargets) != len(want.RenderTargets) {
		t.Fatal("resource tables changed size")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := trace.Decode(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage gob accepted")
	}
	if _, err := trace.DecodeJSON(strings.NewReader("{")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestDecodeLimitedEnforcesSizeCap(t *testing.T) {
	w := tracetest.Tiny()
	var gobBuf, jsonBuf bytes.Buffer
	if err := w.Encode(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if err := w.EncodeJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}

	// A cap below the encoded size must reject with ErrTooLarge.
	_, err := trace.DecodeLimited(bytes.NewReader(gobBuf.Bytes()), int64(gobBuf.Len())/2)
	if !errors.Is(err, traceerr.ErrTooLarge) {
		t.Fatalf("gob over cap: err = %v, want ErrTooLarge", err)
	}
	_, err = trace.DecodeJSONLimited(bytes.NewReader(jsonBuf.Bytes()), int64(jsonBuf.Len())/2)
	if !errors.Is(err, traceerr.ErrTooLarge) {
		t.Fatalf("json over cap: err = %v, want ErrTooLarge", err)
	}

	// At or above the encoded size both decoders succeed.
	if _, err := trace.DecodeLimited(bytes.NewReader(gobBuf.Bytes()), int64(gobBuf.Len())); err != nil {
		t.Fatalf("gob at exact cap: %v", err)
	}
	if _, err := trace.DecodeJSONLimited(bytes.NewReader(jsonBuf.Bytes()), int64(jsonBuf.Len())+1); err != nil {
		t.Fatalf("json within cap: %v", err)
	}

	// A truncated-but-small input must NOT be misreported as too large.
	_, err = trace.DecodeLimited(bytes.NewReader(gobBuf.Bytes()[:gobBuf.Len()/2]), int64(gobBuf.Len()))
	if err == nil || errors.Is(err, traceerr.ErrTooLarge) {
		t.Fatalf("truncated input: err = %v, want decode failure that is not ErrTooLarge", err)
	}
}

func TestDecodeValidatesContent(t *testing.T) {
	// Encode a workload, then break it *before* encoding so the decoder
	// sees structurally valid gob that fails semantic validation.
	w := tracetest.Tiny()
	w.Frames[0].Draws[0].CoverageFrac = 7 // invalid
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Decode(&buf); err == nil {
		t.Error("decoder accepted semantically invalid workload")
	}
}
