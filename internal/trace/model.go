// Package trace models captured 3D workloads: draw calls, frames,
// bound resources and pipeline state.
//
// The paper operates on D3D frame captures of commercial games. This
// package is the in-memory equivalent of such a capture at the
// granularity the methodology needs: one record per draw call carrying
// the micro-architecture independent quantities (geometry size, bound
// shaders, textures, raster state, screen coverage) that both the
// feature extractor and the GPU cost model consume.
package trace

import (
	"fmt"

	"repro/internal/shader"
)

// TextureID identifies a texture within a workload; 0 means "no
// texture bound". Valid ids index Workload.Textures at id-1.
type TextureID uint32

// RTID identifies a render target within a workload. Valid ids index
// Workload.RenderTargets at id-1; unlike textures there is no "none"
// value — every draw renders somewhere.
type RTID uint32

// Topology is the primitive topology of a draw.
type Topology uint8

// Supported topologies.
const (
	TriangleList Topology = iota
	TriangleStrip
	LineList
	PointList
)

// String returns the topology name.
func (tp Topology) String() string {
	switch tp {
	case TriangleList:
		return "trilist"
	case TriangleStrip:
		return "tristrip"
	case LineList:
		return "linelist"
	case PointList:
		return "pointlist"
	default:
		return fmt.Sprintf("topology(%d)", uint8(tp))
	}
}

// Texture describes an immutable texture resource.
type Texture struct {
	Width, Height int
	BytesPerTexel int
	MipLevels     int
}

// Footprint returns the total memory footprint of the texture in
// bytes, including the mip chain (each level a quarter of the previous).
func (t Texture) Footprint() int64 {
	w, h := int64(t.Width), int64(t.Height)
	var total int64
	levels := t.MipLevels
	if levels < 1 {
		levels = 1
	}
	for l := 0; l < levels && w > 0 && h > 0; l++ {
		total += w * h * int64(t.BytesPerTexel)
		w /= 2
		h /= 2
	}
	return total
}

// RenderTarget describes a color render target (with optional depth).
type RenderTarget struct {
	Width, Height int
	BytesPerPixel int
	HasDepth      bool
}

// Pixels returns the pixel count of the target.
func (rt RenderTarget) Pixels() int64 { return int64(rt.Width) * int64(rt.Height) }

// DrawCall is one draw command with its bound state. All fields are
// micro-architecture independent: they describe the work submitted,
// never how any particular GPU executes it.
type DrawCall struct {
	// Geometry.
	VertexCount   int
	InstanceCount int
	Topology      Topology

	// Bound programs and resources.
	VS, PS   shader.ID
	Textures []TextureID // pixel-shader slot -> texture (0 = unbound slot)
	RT       RTID

	// Raster state.
	BlendEnable bool
	DepthEnable bool

	// Screen-space behaviour measured at capture time (a trace
	// replayer knows these exactly; they are properties of the
	// workload, not of the simulated GPU).
	CoverageFrac float64 // fraction of the RT covered by this draw, [0, 1]
	Overdraw     float64 // shaded-pixels / covered-pixels, >= 1
	TexLocality  float64 // fraction of bound texture footprints actually touched, (0, 1]

	// MaterialID is capture metadata: the engine-level material/batch
	// this draw came from. The subsetting algorithms never read it; the
	// evaluation uses it as ground truth when assessing clusterings.
	MaterialID uint32
}

// Primitives returns the primitive count implied by the topology and
// vertex count for one instance.
func (d *DrawCall) Primitives() int {
	switch d.Topology {
	case TriangleList:
		return d.VertexCount / 3
	case TriangleStrip:
		if d.VertexCount < 3 {
			return 0
		}
		return d.VertexCount - 2
	case LineList:
		return d.VertexCount / 2
	case PointList:
		return d.VertexCount
	default:
		return 0
	}
}

// TotalVertices returns vertices across all instances.
func (d *DrawCall) TotalVertices() int64 {
	return int64(d.VertexCount) * int64(d.InstanceCount)
}

// TotalPrimitives returns primitives across all instances.
func (d *DrawCall) TotalPrimitives() int64 {
	return int64(d.Primitives()) * int64(d.InstanceCount)
}

// Frame is one rendered frame: an ordered sequence of draw calls.
type Frame struct {
	// Scene is capture metadata naming the content being rendered
	// (e.g. "corridor", "firefight"). Phase detection must rediscover
	// scene structure without reading it; evaluation uses it as ground
	// truth.
	Scene string
	Draws []DrawCall
}

// Workload is a complete captured workload: frames plus the resource
// tables draw calls reference.
type Workload struct {
	Name          string
	Frames        []Frame
	Shaders       *shader.Registry
	Textures      []Texture
	RenderTargets []RenderTarget
}

// Texture resolves a TextureID, returning an error for the reserved id
// 0 or an out-of-range id.
func (w *Workload) Texture(id TextureID) (Texture, error) {
	if id == 0 || int(id) > len(w.Textures) {
		return Texture{}, fmt.Errorf("trace: texture id %d out of range [1, %d]", id, len(w.Textures))
	}
	return w.Textures[id-1], nil
}

// RenderTarget resolves an RTID.
func (w *Workload) RenderTarget(id RTID) (RenderTarget, error) {
	if id == 0 || int(id) > len(w.RenderTargets) {
		return RenderTarget{}, fmt.Errorf("trace: render target id %d out of range [1, %d]", id, len(w.RenderTargets))
	}
	return w.RenderTargets[id-1], nil
}

// NumDraws returns the total draw-call count across all frames.
func (w *Workload) NumDraws() int {
	n := 0
	for i := range w.Frames {
		n += len(w.Frames[i].Draws)
	}
	return n
}

// NumFrames returns the frame count.
func (w *Workload) NumFrames() int { return len(w.Frames) }
