package trace_test

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracetest"
)

func TestTextureFootprint(t *testing.T) {
	// 4x4 RGBA with full mip chain: 64 + 16 + 4 bytes (1x1 level has
	// w=0 after division so the chain stops there with 3 levels).
	tex := trace.Texture{Width: 4, Height: 4, BytesPerTexel: 4, MipLevels: 3}
	if got := tex.Footprint(); got != 64+16+4 {
		t.Errorf("Footprint = %d, want 84", got)
	}
	noMips := trace.Texture{Width: 8, Height: 8, BytesPerTexel: 2, MipLevels: 1}
	if got := noMips.Footprint(); got != 128 {
		t.Errorf("single-level footprint = %d, want 128", got)
	}
	zeroLevels := trace.Texture{Width: 8, Height: 8, BytesPerTexel: 1, MipLevels: 0}
	if got := zeroLevels.Footprint(); got != 64 {
		t.Errorf("MipLevels=0 treated as 1: got %d, want 64", got)
	}
}

func TestRenderTargetPixels(t *testing.T) {
	rt := trace.RenderTarget{Width: 1920, Height: 1080, BytesPerPixel: 4}
	if got := rt.Pixels(); got != 1920*1080 {
		t.Errorf("Pixels = %d", got)
	}
}

func TestPrimitivesByTopology(t *testing.T) {
	cases := []struct {
		topo  trace.Topology
		verts int
		want  int
	}{
		{trace.TriangleList, 9, 3},
		{trace.TriangleList, 10, 3}, // partial primitive dropped
		{trace.TriangleStrip, 5, 3},
		{trace.TriangleStrip, 2, 0},
		{trace.LineList, 8, 4},
		{trace.PointList, 7, 7},
		{trace.Topology(200), 9, 0},
	}
	for _, c := range cases {
		d := trace.DrawCall{Topology: c.topo, VertexCount: c.verts}
		if got := d.Primitives(); got != c.want {
			t.Errorf("%v with %d verts: primitives = %d, want %d", c.topo, c.verts, got, c.want)
		}
	}
}

func TestTotalsWithInstancing(t *testing.T) {
	d := trace.DrawCall{Topology: trace.TriangleList, VertexCount: 30, InstanceCount: 4}
	if got := d.TotalVertices(); got != 120 {
		t.Errorf("TotalVertices = %d", got)
	}
	if got := d.TotalPrimitives(); got != 40 {
		t.Errorf("TotalPrimitives = %d", got)
	}
}

func TestTopologyString(t *testing.T) {
	if trace.TriangleList.String() != "trilist" || trace.PointList.String() != "pointlist" {
		t.Error("topology names wrong")
	}
	if !strings.Contains(trace.Topology(99).String(), "99") {
		t.Error("unknown topology should embed value")
	}
}

func TestWorkloadResourceLookups(t *testing.T) {
	w := tracetest.Tiny()
	if _, err := w.Texture(1); err != nil {
		t.Errorf("texture 1: %v", err)
	}
	if _, err := w.Texture(0); err == nil {
		t.Error("texture id 0 should be invalid")
	}
	if _, err := w.Texture(trace.TextureID(len(w.Textures) + 1)); err == nil {
		t.Error("out-of-range texture accepted")
	}
	if _, err := w.RenderTarget(1); err != nil {
		t.Errorf("rt 1: %v", err)
	}
	if _, err := w.RenderTarget(0); err == nil {
		t.Error("rt id 0 should be invalid")
	}
}

func TestWorkloadCounts(t *testing.T) {
	w := tracetest.Tiny()
	if got := w.NumFrames(); got != 3 {
		t.Errorf("NumFrames = %d", got)
	}
	if got := w.NumDraws(); got != 12 {
		t.Errorf("NumDraws = %d", got)
	}
}
