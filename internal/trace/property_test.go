package trace_test

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// Property: texture footprint is monotone in dimensions, texel size
// and mip count.
func TestFootprintMonotoneProperty(t *testing.T) {
	f := func(wRaw, hRaw, bRaw, mRaw uint8) bool {
		w := int(wRaw%10) + 1
		h := int(hRaw%10) + 1
		bpt := int(bRaw%8) + 1
		mips := int(mRaw % 12)
		base := trace.Texture{Width: 1 << w, Height: 1 << h, BytesPerTexel: bpt, MipLevels: mips}
		bigger := base
		bigger.Width *= 2
		deeper := base
		deeper.MipLevels = mips + 1
		fatter := base
		fatter.BytesPerTexel++
		fp := base.Footprint()
		return fp > 0 &&
			bigger.Footprint() > fp &&
			deeper.Footprint() >= fp &&
			fatter.Footprint() > fp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: primitive counts never exceed vertex counts and respect
// topology arithmetic.
func TestPrimitivesBoundedProperty(t *testing.T) {
	f := func(vRaw uint16, topoRaw, instRaw uint8) bool {
		verts := int(vRaw) + 1
		topo := trace.Topology(topoRaw % 4)
		inst := int(instRaw%10) + 1
		d := trace.DrawCall{VertexCount: verts, InstanceCount: inst, Topology: topo}
		p := d.Primitives()
		if p < 0 || p > verts {
			return false
		}
		if d.TotalPrimitives() != int64(p)*int64(inst) {
			return false
		}
		if d.TotalVertices() != int64(verts)*int64(inst) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
