package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dcmath"
)

// Summary holds descriptive statistics of a workload, the numbers a
// corpus table (paper Table "workload summary") reports.
type Summary struct {
	Name            string
	Frames          int
	Draws           int
	DrawsPerFrame   float64 // mean
	MinDrawsFrame   int
	MaxDrawsFrame   int
	UniqueVS        int
	UniquePS        int
	UniqueMaterials int
	TotalVertices   int64
	TotalPrimitives int64
	Scenes          []string // distinct scene labels in first-seen order
}

// Summarize computes the workload summary.
func Summarize(w *Workload) Summary {
	s := Summary{Name: w.Name, Frames: len(w.Frames)}
	vs := map[uint32]bool{}
	ps := map[uint32]bool{}
	mats := map[uint32]bool{}
	sceneSeen := map[string]bool{}
	perFrame := make([]float64, 0, len(w.Frames))
	for fi := range w.Frames {
		f := &w.Frames[fi]
		if !sceneSeen[f.Scene] {
			sceneSeen[f.Scene] = true
			s.Scenes = append(s.Scenes, f.Scene)
		}
		n := len(f.Draws)
		s.Draws += n
		perFrame = append(perFrame, float64(n))
		if s.MinDrawsFrame == 0 || n < s.MinDrawsFrame {
			s.MinDrawsFrame = n
		}
		if n > s.MaxDrawsFrame {
			s.MaxDrawsFrame = n
		}
		for di := range f.Draws {
			d := &f.Draws[di]
			vs[uint32(d.VS)] = true
			ps[uint32(d.PS)] = true
			mats[d.MaterialID] = true
			s.TotalVertices += d.TotalVertices()
			s.TotalPrimitives += d.TotalPrimitives()
		}
	}
	s.DrawsPerFrame = dcmath.Mean(perFrame)
	s.UniqueVS = len(vs)
	s.UniquePS = len(ps)
	s.UniqueMaterials = len(mats)
	return s
}

// WriteTable renders a fixed-width corpus table for the given
// workloads, one row each plus a totals row.
func WriteTable(out io.Writer, ws []*Workload) {
	fmt.Fprintf(out, "%-14s %8s %10s %12s %8s %8s %10s\n",
		"workload", "frames", "draws", "draws/frame", "VS", "PS", "scenes")
	totFrames, totDraws := 0, 0
	for _, w := range ws {
		s := Summarize(w)
		fmt.Fprintf(out, "%-14s %8d %10d %12.1f %8d %8d %10d\n",
			s.Name, s.Frames, s.Draws, s.DrawsPerFrame, s.UniqueVS, s.UniquePS, len(s.Scenes))
		totFrames += s.Frames
		totDraws += s.Draws
	}
	fmt.Fprintf(out, "%-14s %8d %10d\n", "TOTAL", totFrames, totDraws)
}

// ShaderUsage returns, for each pixel-shader id used by the workload,
// the number of draws binding it, sorted by descending use.
type ShaderUsage struct {
	ID    uint32
	Draws int
}

// PixelShaderUsage tabulates pixel-shader popularity across the
// workload — a quick view of how concentrated shader use is, which is
// what makes shader vectors discriminative.
func PixelShaderUsage(w *Workload) []ShaderUsage {
	counts := map[uint32]int{}
	for fi := range w.Frames {
		for di := range w.Frames[fi].Draws {
			counts[uint32(w.Frames[fi].Draws[di].PS)]++
		}
	}
	out := make([]ShaderUsage, 0, len(counts))
	for id, n := range counts {
		out = append(out, ShaderUsage{ID: id, Draws: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Draws != out[j].Draws {
			return out[i].Draws > out[j].Draws
		}
		return out[i].ID < out[j].ID
	})
	return out
}
