package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracetest"
)

func TestSummarize(t *testing.T) {
	w := tracetest.Tiny()
	s := trace.Summarize(w)
	if s.Name != "tiny" || s.Frames != 3 || s.Draws != 12 {
		t.Fatalf("summary = %+v", s)
	}
	if s.DrawsPerFrame != 4 {
		t.Errorf("DrawsPerFrame = %v", s.DrawsPerFrame)
	}
	if s.MinDrawsFrame != 4 || s.MaxDrawsFrame != 4 {
		t.Errorf("min/max draws = %d/%d", s.MinDrawsFrame, s.MaxDrawsFrame)
	}
	if s.UniqueVS != 2 || s.UniquePS != 2 {
		t.Errorf("unique shaders = %d VS, %d PS", s.UniqueVS, s.UniquePS)
	}
	if s.UniqueMaterials != 3 {
		t.Errorf("unique materials = %d", s.UniqueMaterials)
	}
	if len(s.Scenes) != 1 || s.Scenes[0] != "fixture" {
		t.Errorf("scenes = %v", s.Scenes)
	}
	if s.TotalVertices <= 0 || s.TotalPrimitives <= 0 {
		t.Error("totals not computed")
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	w := tracetest.Tiny()
	trace.WriteTable(&buf, []*trace.Workload{w, w})
	out := buf.String()
	if !strings.Contains(out, "tiny") || !strings.Contains(out, "TOTAL") {
		t.Errorf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "24") { // total draws across two copies
		t.Errorf("table missing total draws:\n%s", out)
	}
}

func TestPixelShaderUsage(t *testing.T) {
	w := tracetest.Tiny()
	usage := trace.PixelShaderUsage(w)
	if len(usage) != 2 {
		t.Fatalf("usage entries = %d", len(usage))
	}
	// Each frame: 2 draws ps.textured, 2 draws ps.flat -> tie broken by id.
	if usage[0].Draws < usage[1].Draws {
		t.Error("usage not sorted descending")
	}
	total := usage[0].Draws + usage[1].Draws
	if total != w.NumDraws() {
		t.Errorf("usage total %d != draws %d", total, w.NumDraws())
	}
}
