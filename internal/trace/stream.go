package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/shader"
)

// Header is a workload's frame-independent part: identity plus the
// resource tables every draw references. It travels once at the front
// of a frame stream.
type Header struct {
	Name          string
	Shaders       []shader.Program
	Textures      []Texture
	RenderTargets []RenderTarget
}

// HeaderOf extracts the header of an in-memory workload.
func HeaderOf(w *Workload) Header {
	progs := w.Shaders.Programs()
	flat := make([]shader.Program, len(progs))
	for i, p := range progs {
		flat[i] = *p
	}
	return Header{
		Name:          w.Name,
		Shaders:       flat,
		Textures:      w.Textures,
		RenderTargets: w.RenderTargets,
	}
}

// Shell materializes a frameless Workload from the header — the
// resource context streaming consumers (extractors, simulators) bind
// against while frames flow past.
func (h Header) Shell() (*Workload, error) {
	progs := make([]*shader.Program, len(h.Shaders))
	for i := range h.Shaders {
		p := h.Shaders[i]
		progs[i] = &p
	}
	reg, err := shader.RestoreRegistry(progs)
	if err != nil {
		return nil, fmt.Errorf("trace: stream header: %w", err)
	}
	if h.Name == "" {
		return nil, fmt.Errorf("trace: stream header has empty name")
	}
	return &Workload{
		Name:          h.Name,
		Shaders:       reg,
		Textures:      h.Textures,
		RenderTargets: h.RenderTargets,
	}, nil
}

// StreamEncoder writes a workload as header + one record per frame, so
// arbitrarily long captures encode in bounded memory. New streams are
// written in format v2 (checksummed, resyncable); NewStreamEncoderV1
// keeps the legacy raw-gob writer for compatibility tooling.
type StreamEncoder struct {
	writeFrame func(*Frame) error
	frames     int
}

// NewStreamEncoder writes the v2 container header and stream header
// record immediately.
func NewStreamEncoder(out io.Writer, h Header) (*StreamEncoder, error) {
	w, err := newStreamWriterV2(out, h)
	if err != nil {
		return nil, err
	}
	return &StreamEncoder{writeFrame: w.writeFrame}, nil
}

// NewStreamEncoderV1 writes the legacy v1 format: a bare gob stream of
// header then frames, with no magic, framing or checksums. It exists so
// compatibility with already-captured fleets can be tested; new
// captures should use NewStreamEncoder.
func NewStreamEncoderV1(out io.Writer, h Header) (*StreamEncoder, error) {
	enc := gob.NewEncoder(out)
	if err := enc.Encode(h); err != nil {
		return nil, fmt.Errorf("trace: encoding stream header: %w", err)
	}
	return &StreamEncoder{writeFrame: func(f *Frame) error {
		return enc.Encode(f)
	}}, nil
}

// WriteFrame appends one frame record.
func (e *StreamEncoder) WriteFrame(f *Frame) error {
	if err := e.writeFrame(f); err != nil {
		return fmt.Errorf("trace: encoding frame %d: %w", e.frames, err)
	}
	e.frames++
	return nil
}

// Frames returns the number of frames written so far.
func (e *StreamEncoder) Frames() int { return e.frames }

// EncodeStream writes an entire in-memory workload in stream format —
// the bridge from batch tooling to streaming consumers.
func EncodeStream(out io.Writer, w *Workload) error {
	enc, err := NewStreamEncoder(out, HeaderOf(w))
	if err != nil {
		return err
	}
	for i := range w.Frames {
		if err := enc.WriteFrame(&w.Frames[i]); err != nil {
			return err
		}
	}
	return nil
}

// StreamDecoder reads header + frames written by StreamEncoder (either
// format version), failing fast on the first problem. It is the strict
// face of StreamReader; use NewStreamReader directly for lenient
// ingestion of damaged captures.
type StreamDecoder struct {
	r *StreamReader
}

// NewStreamDecoder reads and validates the header.
func NewStreamDecoder(in io.Reader) (*StreamDecoder, error) {
	r, err := NewStreamReader(in, ReaderOptions{})
	if err != nil {
		return nil, err
	}
	return &StreamDecoder{r: r}, nil
}

// Shell returns the frameless workload the stream's frames belong to.
// Callers must not append frames to it; it exists to resolve resources.
func (d *StreamDecoder) Shell() *Workload { return d.r.Shell() }

// NextFrame returns the next frame, validating its draws against the
// shell's resource tables. It returns io.EOF after the last frame.
func (d *StreamDecoder) NextFrame() (Frame, error) { return d.r.NextFrame() }

// FramesRead returns how many frames have been decoded.
func (d *StreamDecoder) FramesRead() int { return d.r.FramesRead() }
