package trace_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracetest"
)

func TestStreamRoundTrip(t *testing.T) {
	w := tracetest.Tiny()
	var buf bytes.Buffer
	if err := trace.EncodeStream(&buf, w); err != nil {
		t.Fatal(err)
	}
	dec, err := trace.NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	shell := dec.Shell()
	if shell.Name != "tiny" || shell.Shaders.Len() != w.Shaders.Len() {
		t.Fatalf("shell = %q with %d shaders", shell.Name, shell.Shaders.Len())
	}
	if len(shell.Frames) != 0 {
		t.Fatal("shell should have no frames")
	}
	var frames []trace.Frame
	for {
		f, err := dec.NextFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if len(frames) != w.NumFrames() {
		t.Fatalf("streamed %d frames, want %d", len(frames), w.NumFrames())
	}
	if dec.FramesRead() != w.NumFrames() {
		t.Errorf("FramesRead = %d", dec.FramesRead())
	}
	for fi := range frames {
		if len(frames[fi].Draws) != len(w.Frames[fi].Draws) {
			t.Fatalf("frame %d draw count changed", fi)
		}
		if frames[fi].Draws[0].VertexCount != w.Frames[fi].Draws[0].VertexCount {
			t.Fatalf("frame %d content changed", fi)
		}
	}
}

func TestStreamEncoderIncremental(t *testing.T) {
	w := tracetest.Tiny()
	var buf bytes.Buffer
	enc, err := trace.NewStreamEncoder(&buf, trace.HeaderOf(w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Frames {
		if err := enc.WriteFrame(&w.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Frames() != 3 {
		t.Errorf("Frames() = %d", enc.Frames())
	}
	dec, err := trace.NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := dec.NextFrame(); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 {
		t.Errorf("decoded %d frames", n)
	}
}

func TestStreamDecoderValidatesFrames(t *testing.T) {
	w := tracetest.Tiny()
	w.Frames[1].Draws[0].CoverageFrac = 9 // invalid, but Validate not run by EncodeStream path below
	var buf bytes.Buffer
	enc, err := trace.NewStreamEncoder(&buf, trace.HeaderOf(w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Frames {
		if err := enc.WriteFrame(&w.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := trace.NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.NextFrame(); err != nil {
		t.Fatalf("frame 0 should decode: %v", err)
	}
	if _, err := dec.NextFrame(); err == nil {
		t.Fatal("corrupt frame 1 accepted")
	}
}

func TestStreamDecoderRejectsGarbage(t *testing.T) {
	if _, err := trace.NewStreamDecoder(strings.NewReader("garbage")); err == nil {
		t.Error("garbage header accepted")
	}
}

func TestHeaderShellErrors(t *testing.T) {
	h := trace.Header{Name: ""}
	if _, err := h.Shell(); err == nil {
		t.Error("empty-name header accepted")
	}
}
