// Stream format v2 — the fault-tolerant frame-stream container.
//
// The v1 format (NewStreamEncoderV1) is a bare gob stream: no magic,
// no framing, no checksums. One flipped byte anywhere poisons the gob
// decoder state and aborts the rest of the capture. At fleet scale —
// hundreds of captures streamed off disks and networks — truncation
// and bit rot are routine, so v2 makes every record independently
// verifiable and skippable:
//
//	container := magic "3DWS" | version byte (2) | record*
//	record    := sync [4]byte | kind byte | payloadLen uint32le |
//	             crc32le(payload) | payload
//
// kind 1 carries the stream Header, kind 2 one Frame; each payload is
// a self-contained gob encoding (type descriptors re-sent per record —
// a few hundred bytes of overhead that buys the ability to decode any
// record in isolation). A reader that finds a bad sync marker, an
// implausible length, a checksum mismatch or a truncated tail can scan
// forward for the next sync marker and re-lock onto the record stream,
// accounting for every byte it had to discard.
//
// StreamReader reads both versions: the magic is sniffed and absent on
// v1 streams, which fall back to the legacy gob path (fail-fast; gob's
// stateful wire format cannot be resynced).
package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/traceerr"
)

// StreamVersion is the container version written by NewStreamEncoder.
const StreamVersion = 2

// StreamMagic is the byte string that opens a stream container,
// exported so ingestion layers can sniff the format from a peek at the
// first bytes before committing to a reader.
const StreamMagic = "3DWS"

// DefaultMaxRecordBytes caps a single record's payload. Lengths above
// the cap are treated as corruption rather than allocation requests.
const DefaultMaxRecordBytes = 64 << 20

var (
	streamMagic = []byte(StreamMagic)
	recSync     = []byte{0xA9, 0x3D, 0x5C, 0xE2}
)

const (
	recHeaderLen       = 13 // sync(4) + kind(1) + len(4) + crc(4)
	recKindHeader byte = 1
	recKindFrame  byte = 2
)

// streamWriterV2 frames gob payloads into checksummed records.
type streamWriterV2 struct {
	w       io.Writer
	scratch bytes.Buffer
}

func newStreamWriterV2(out io.Writer, h Header) (*streamWriterV2, error) {
	sw := &streamWriterV2{w: out}
	magic := make([]byte, len(streamMagic)+1)
	copy(magic, streamMagic)
	magic[len(streamMagic)] = StreamVersion
	if _, err := out.Write(magic); err != nil {
		return nil, fmt.Errorf("trace: writing stream magic: %w", err)
	}
	if err := sw.writeRecord(recKindHeader, h); err != nil {
		return nil, fmt.Errorf("trace: encoding stream header: %w", err)
	}
	return sw, nil
}

func (sw *streamWriterV2) writeRecord(kind byte, v any) error {
	sw.scratch.Reset()
	if err := gob.NewEncoder(&sw.scratch).Encode(v); err != nil {
		return err
	}
	payload := sw.scratch.Bytes()
	var hdr [recHeaderLen]byte
	copy(hdr[:4], recSync)
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := sw.w.Write(payload)
	return err
}

func (sw *streamWriterV2) writeFrame(f *Frame) error {
	return sw.writeRecord(recKindFrame, f)
}

// recordScanner maintains a sliding window over the input and extracts
// records from it. In lenient mode a malformed region is scanned
// byte-by-byte for the next sync marker; in strict mode the first
// deviation is returned as a typed error.
type recordScanner struct {
	r     io.Reader
	buf   []byte
	off   int64 // absolute offset of buf[0]
	rerr  error // sticky error from the underlying reader
	max   int   // payload size cap
	chunk []byte
}

func (s *recordScanner) fill(n int) {
	if s.chunk == nil {
		s.chunk = make([]byte, 64<<10)
	}
	for len(s.buf) < n && s.rerr == nil {
		m, err := s.r.Read(s.chunk)
		s.buf = append(s.buf, s.chunk[:m]...)
		if err != nil {
			s.rerr = err
		}
	}
}

func (s *recordScanner) discard(n int) {
	s.buf = s.buf[n:]
	s.off += int64(n)
}

// next extracts one record. It returns io.EOF at a clean end of input.
// In lenient mode, bytes skipped while regaining record lock are
// accounted in diag; one RecordsResynced increment per lost-lock
// episode.
func (s *recordScanner) next(lenient bool, diag *traceerr.Diagnostics) (byte, []byte, error) {
	resyncing := false
	skip := func(n int) {
		if !resyncing {
			resyncing = true
			diag.RecordsResynced++
		}
		diag.BytesDiscarded += int64(n)
		s.discard(n)
	}
	for {
		s.fill(recHeaderLen)
		if len(s.buf) == 0 {
			if s.rerr == nil || errors.Is(s.rerr, io.EOF) {
				return 0, nil, io.EOF
			}
			return 0, nil, s.rerr
		}
		if len(s.buf) < recHeaderLen {
			// Tail too short to hold any record.
			if !lenient {
				return 0, nil, &traceerr.RecordError{
					Kind: traceerr.ErrTruncated, Record: -1, Frame: -1, Offset: s.off,
					Cause: fmt.Errorf("%d trailing bytes, record header needs %d", len(s.buf), recHeaderLen),
				}
			}
			skip(len(s.buf))
			continue
		}
		if !bytes.Equal(s.buf[:4], recSync) {
			if !lenient {
				return 0, nil, &traceerr.RecordError{
					Kind: traceerr.ErrCorruptRecord, Record: -1, Frame: -1, Offset: s.off,
					Cause: errors.New("record boundary marker not found"),
				}
			}
			if i := bytes.Index(s.buf, recSync); i >= 0 {
				skip(i)
			} else {
				// Keep a marker-length tail: the marker may straddle
				// the window edge.
				skip(len(s.buf) - (len(recSync) - 1))
				if s.rerr != nil {
					skip(len(s.buf))
				}
			}
			continue
		}
		kind := s.buf[4]
		plen := binary.LittleEndian.Uint32(s.buf[5:9])
		crc := binary.LittleEndian.Uint32(s.buf[9:13])
		if (kind != recKindHeader && kind != recKindFrame) || int64(plen) > int64(s.max) {
			if !lenient {
				return 0, nil, &traceerr.RecordError{
					Kind: traceerr.ErrCorruptRecord, Record: -1, Frame: -1, Offset: s.off,
					Cause: fmt.Errorf("implausible record header (kind %d, length %d)", kind, plen),
				}
			}
			skip(1) // false or damaged marker: rescan from the next byte
			continue
		}
		total := recHeaderLen + int(plen)
		s.fill(total)
		if len(s.buf) < total {
			if !lenient {
				return 0, nil, &traceerr.RecordError{
					Kind: traceerr.ErrTruncated, Record: -1, Frame: -1, Offset: s.off,
					Cause: fmt.Errorf("record needs %d bytes, %d remain", total, len(s.buf)),
				}
			}
			skip(1)
			continue
		}
		payload := s.buf[recHeaderLen:total]
		if crc32.ChecksumIEEE(payload) != crc {
			if !lenient {
				return 0, nil, &traceerr.RecordError{
					Kind: traceerr.ErrCorruptRecord, Record: -1, Frame: -1, Offset: s.off,
					Cause: errors.New("payload checksum mismatch"),
				}
			}
			skip(1)
			continue
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		s.discard(total)
		return kind, out, nil
	}
}

// ReaderOptions configures a StreamReader.
type ReaderOptions struct {
	// Lenient makes the reader skip damaged records and invalid frames
	// (accounted in Diagnostics) instead of failing fast. The stream
	// header itself must still parse — without the resource tables no
	// frame can be interpreted.
	Lenient bool

	// MaxRecordBytes caps a single record payload (0 means
	// DefaultMaxRecordBytes). Larger lengths are treated as corruption.
	MaxRecordBytes int
}

// StreamReader reads frame streams in either format version with
// optional graceful degradation. Construct with NewStreamReader.
type StreamReader struct {
	opt     ReaderOptions
	shell   *Workload
	version int
	diag    traceerr.Diagnostics
	frames  int // frames delivered
	records int // records consumed (v2)

	sc     *recordScanner // v2 path
	dec    *gob.Decoder   // v1 path
	v1dead bool
}

// NewStreamReader sniffs the format version, reads and validates the
// stream header, and returns a reader positioned at the first frame.
func NewStreamReader(in io.Reader, opt ReaderOptions) (*StreamReader, error) {
	if opt.MaxRecordBytes <= 0 {
		opt.MaxRecordBytes = DefaultMaxRecordBytes
	}
	sc := &recordScanner{r: in, max: opt.MaxRecordBytes}
	sc.fill(len(streamMagic) + 1)
	r := &StreamReader{opt: opt}
	if len(sc.buf) >= len(streamMagic)+1 && bytes.Equal(sc.buf[:len(streamMagic)], streamMagic) {
		if ver := sc.buf[len(streamMagic)]; int(ver) != StreamVersion {
			return nil, &traceerr.RecordError{
				Kind: traceerr.ErrVersionMismatch, Record: -1, Frame: -1, Offset: int64(len(streamMagic)),
				Cause: fmt.Errorf("stream version %d, this build reads v1 and v%d", ver, StreamVersion),
			}
		}
		sc.discard(len(streamMagic) + 1)
		r.version = 2
		r.sc = sc
		kind, payload, err := sc.next(opt.Lenient, &r.diag)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = &traceerr.RecordError{Kind: traceerr.ErrTruncated, Record: 0, Frame: -1, Offset: sc.off,
					Cause: errors.New("stream ends before header record")}
			}
			return nil, fmt.Errorf("trace: decoding stream header: %w", r.atRecord(err))
		}
		r.records++
		if kind != recKindHeader {
			return nil, fmt.Errorf("trace: decoding stream header: %w", &traceerr.RecordError{
				Kind: traceerr.ErrCorruptRecord, Record: 0, Frame: -1, Offset: sc.off,
				Cause: fmt.Errorf("first record has kind %d, want header", kind)})
		}
		var h Header
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&h); err != nil {
			return nil, fmt.Errorf("trace: decoding stream header: %w", &traceerr.RecordError{
				Kind: traceerr.ErrCorruptRecord, Record: 0, Frame: -1, Offset: sc.off, Cause: err})
		}
		shell, err := h.Shell()
		if err != nil {
			return nil, err
		}
		r.shell = shell
		return r, nil
	}

	// No magic: legacy v1 raw gob. Replay the sniffed bytes.
	r.version = 1
	dec := gob.NewDecoder(io.MultiReader(bytes.NewReader(sc.buf), in))
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: decoding stream header: %w", &traceerr.RecordError{
			Kind: classifyDecodeErr(err), Record: 0, Frame: -1, Offset: -1, Cause: err})
	}
	shell, err := h.Shell()
	if err != nil {
		return nil, err
	}
	r.shell = shell
	r.dec = dec
	return r, nil
}

// classifyDecodeErr maps a gob failure onto the taxonomy: inputs that
// ran out are truncation, everything else is corruption.
func classifyDecodeErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return traceerr.ErrTruncated
	}
	return traceerr.ErrCorruptRecord
}

// atRecord stamps the current record index onto a scanner error.
func (r *StreamReader) atRecord(err error) error {
	var re *traceerr.RecordError
	if errors.As(err, &re) && re.Record < 0 {
		re.Record = r.records
	}
	return err
}

// Shell returns the frameless workload the stream's frames belong to.
// Callers must not append frames to it; it exists to resolve resources.
func (r *StreamReader) Shell() *Workload { return r.shell }

// Version reports the container version being read (1 or 2).
func (r *StreamReader) Version() int { return r.version }

// FramesRead returns how many frames have been delivered.
func (r *StreamReader) FramesRead() int { return r.frames }

// Diagnostics returns the degradation accounting so far. In strict
// mode it stays zero.
func (r *StreamReader) Diagnostics() traceerr.Diagnostics { return r.diag }

// NextFrame returns the next valid frame, or io.EOF after the last.
// Strict mode fails on the first damaged record or invalid frame with
// an error classified by the traceerr taxonomy; lenient mode skips the
// damage, accounts for it in Diagnostics, and keeps going.
func (r *StreamReader) NextFrame() (Frame, error) {
	for {
		var f Frame
		if r.version == 2 {
			kind, payload, err := r.sc.next(r.opt.Lenient, &r.diag)
			if errors.Is(err, io.EOF) {
				return Frame{}, io.EOF
			}
			if err != nil {
				return Frame{}, fmt.Errorf("trace: decoding frame %d: %w", r.frames, r.atRecord(err))
			}
			rec := r.records
			r.records++
			if kind != recKindFrame {
				// A header record mid-stream: tolerated leniently as a
				// skipped record (e.g. two captures concatenated).
				if !r.opt.Lenient {
					return Frame{}, fmt.Errorf("trace: decoding frame %d: %w", r.frames, &traceerr.RecordError{
						Kind: traceerr.ErrCorruptRecord, Record: rec, Frame: r.frames, Offset: r.sc.off,
						Cause: fmt.Errorf("unexpected record kind %d mid-stream", kind)})
				}
				r.diag.RecordsResynced++
				r.diag.BytesDiscarded += int64(recHeaderLen + len(payload))
				continue
			}
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
				if !r.opt.Lenient {
					return Frame{}, fmt.Errorf("trace: decoding frame %d: %w", r.frames, &traceerr.RecordError{
						Kind: traceerr.ErrCorruptRecord, Record: rec, Frame: r.frames, Offset: r.sc.off, Cause: err})
				}
				r.diag.FramesSkipped++
				continue
			}
		} else {
			if r.v1dead {
				return Frame{}, io.EOF
			}
			if err := r.dec.Decode(&f); err != nil {
				if errors.Is(err, io.EOF) {
					return Frame{}, io.EOF
				}
				if !r.opt.Lenient {
					return Frame{}, fmt.Errorf("trace: decoding frame %d: %w", r.frames, &traceerr.RecordError{
						Kind: classifyDecodeErr(err), Record: -1, Frame: r.frames, Offset: -1, Cause: err})
				}
				// gob's wire format is stateful: after a decode error
				// the rest of a v1 stream is unrecoverable.
				r.v1dead = true
				r.diag.FramesSkipped++
				return Frame{}, io.EOF
			}
		}

		if len(f.Draws) == 0 {
			if !r.opt.Lenient {
				return Frame{}, fmt.Errorf("trace: streamed frame %d has no draws: %w", r.frames, &traceerr.RecordError{
					Kind: traceerr.ErrInvalidFrame, Record: r.records - 1, Frame: r.frames, Offset: -1})
			}
			r.diag.FramesSkipped++
			continue
		}
		if r.opt.Lenient {
			dropped, _ := r.shell.SanitizeFrame(&f)
			r.diag.DrawsDropped += dropped
			if len(f.Draws) == 0 {
				r.diag.FramesSkipped++
				continue
			}
		} else {
			for di := range f.Draws {
				if err := r.shell.validateDraw(&f.Draws[di]); err != nil {
					return Frame{}, fmt.Errorf("trace: streamed frame %d draw %d: %w", r.frames, di, &traceerr.RecordError{
						Kind: traceerr.ErrInvalidFrame, Record: r.records - 1, Frame: r.frames, Offset: -1, Cause: err})
				}
			}
		}
		r.frames++
		return f, nil
	}
}
