package trace_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/trace"
	"repro/internal/traceerr"
	"repro/internal/tracetest"
)

// encodeV2Boundaries writes w in v2 stream format and returns the
// encoded bytes plus the byte offset where each frame record starts.
func encodeV2Boundaries(t *testing.T, w *trace.Workload) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	enc, err := trace.NewStreamEncoder(&buf, trace.HeaderOf(w))
	if err != nil {
		t.Fatal(err)
	}
	var starts []int
	for i := range w.Frames {
		starts = append(starts, buf.Len())
		if err := enc.WriteFrame(&w.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), starts
}

func drainFrames(t *testing.T, r *trace.StreamReader) []trace.Frame {
	t.Helper()
	var frames []trace.Frame
	for {
		f, err := r.NextFrame()
		if errors.Is(err, io.EOF) {
			return frames
		}
		if err != nil {
			t.Fatalf("NextFrame: %v", err)
		}
		frames = append(frames, f)
	}
}

func TestStreamV2RoundTrip(t *testing.T) {
	w := tracetest.Tiny()
	data, _ := encodeV2Boundaries(t, w)
	r, err := trace.NewStreamReader(bytes.NewReader(data), trace.ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 {
		t.Fatalf("Version = %d, want 2", r.Version())
	}
	frames := drainFrames(t, r)
	if len(frames) != w.NumFrames() {
		t.Fatalf("read %d frames, want %d", len(frames), w.NumFrames())
	}
	for fi := range frames {
		if len(frames[fi].Draws) != len(w.Frames[fi].Draws) {
			t.Fatalf("frame %d draw count changed", fi)
		}
		if frames[fi].Draws[0].VertexCount != w.Frames[fi].Draws[0].VertexCount {
			t.Fatalf("frame %d content changed", fi)
		}
	}
	if r.Diagnostics().Any() {
		t.Errorf("clean stream produced diagnostics: %v", r.Diagnostics())
	}
}

func TestStreamV1BackwardCompat(t *testing.T) {
	// Streams written by the seed code (bare gob, no container) must
	// still read through both the strict decoder and the new reader.
	w := tracetest.Tiny()
	var buf bytes.Buffer
	enc, err := trace.NewStreamEncoderV1(&buf, trace.HeaderOf(w))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Frames {
		if err := enc.WriteFrame(&w.Frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	v1 := buf.Bytes()

	dec, err := trace.NewStreamDecoder(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 stream rejected by StreamDecoder: %v", err)
	}
	n := 0
	for {
		if _, err := dec.NextFrame(); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != w.NumFrames() {
		t.Fatalf("decoded %d v1 frames, want %d", n, w.NumFrames())
	}

	r, err := trace.NewStreamReader(bytes.NewReader(v1), trace.ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 1 {
		t.Fatalf("Version = %d, want 1", r.Version())
	}
	if got := drainFrames(t, r); len(got) != w.NumFrames() {
		t.Fatalf("lenient reader got %d v1 frames, want %d", len(got), w.NumFrames())
	}
}

func TestStreamV2CorruptRecordStrict(t *testing.T) {
	w := tracetest.Tiny()
	data, starts := encodeV2Boundaries(t, w)
	corrupt := append([]byte{}, data...)
	corrupt[starts[1]+20] ^= 0xff // inside frame 1's payload

	r, err := trace.NewStreamReader(bytes.NewReader(corrupt), trace.ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextFrame(); err != nil {
		t.Fatalf("frame 0 should read cleanly: %v", err)
	}
	_, err = r.NextFrame()
	if !errors.Is(err, traceerr.ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
	var re *traceerr.RecordError
	if !errors.As(err, &re) {
		t.Fatalf("err %v carries no RecordError", err)
	}
	// Record 0 is the header, frame k is record k+1.
	if re.Record != 2 {
		t.Errorf("corrupt record reported at index %d, want 2", re.Record)
	}
}

func TestStreamV2CorruptRecordLenient(t *testing.T) {
	w := tracetest.Tiny()
	data, starts := encodeV2Boundaries(t, w)

	cases := map[string]func([]byte){
		"payload bitflip": func(b []byte) { b[starts[1]+20] ^= 0x01 },
		"length field":    func(b []byte) { b[starts[1]+6] ^= 0x40 },
		"sync marker":     func(b []byte) { b[starts[1]] ^= 0xff },
		"zero run": func(b []byte) {
			for i := starts[1] + 14; i < starts[1]+46; i++ {
				b[i] = 0
			}
		},
	}
	for name, mangle := range cases {
		t.Run(name, func(t *testing.T) {
			corrupt := append([]byte{}, data...)
			mangle(corrupt)
			r, err := trace.NewStreamReader(bytes.NewReader(corrupt), trace.ReaderOptions{Lenient: true})
			if err != nil {
				t.Fatal(err)
			}
			frames := drainFrames(t, r)
			if len(frames) != w.NumFrames()-1 {
				t.Fatalf("read %d frames, want %d (frame 1 skipped)", len(frames), w.NumFrames()-1)
			}
			// Surviving frames must be frames 0 and 2, intact.
			if frames[0].Draws[0].VertexCount != w.Frames[0].Draws[0].VertexCount ||
				frames[1].Draws[0].VertexCount != w.Frames[2].Draws[0].VertexCount {
				t.Error("surviving frames do not match originals")
			}
			d := r.Diagnostics()
			if d.RecordsResynced != 1 {
				t.Errorf("RecordsResynced = %d, want 1", d.RecordsResynced)
			}
			if d.BytesDiscarded == 0 {
				t.Error("BytesDiscarded = 0, want > 0")
			}
			if d.FramesSkipped != 0 || d.DrawsDropped != 0 {
				t.Errorf("unexpected frame/draw accounting: %+v", d)
			}
		})
	}
}

func TestStreamV2TornRecord(t *testing.T) {
	w := tracetest.Tiny()
	data, starts := encodeV2Boundaries(t, w)
	// Tear 30 bytes out of the middle of frame 1's record.
	torn := append([]byte{}, data[:starts[1]+10]...)
	torn = append(torn, data[starts[1]+40:]...)

	r, err := trace.NewStreamReader(bytes.NewReader(torn), trace.ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	frames := drainFrames(t, r)
	if len(frames) != w.NumFrames()-1 {
		t.Fatalf("read %d frames, want %d", len(frames), w.NumFrames()-1)
	}
	if d := r.Diagnostics(); d.RecordsResynced != 1 {
		t.Errorf("RecordsResynced = %d, want 1 (diag %+v)", d.RecordsResynced, d)
	}
}

func TestStreamV2Truncated(t *testing.T) {
	w := tracetest.Tiny()
	data, starts := encodeV2Boundaries(t, w)
	cut := data[:starts[2]+25] // mid-way through the last frame record

	r, err := trace.NewStreamReader(bytes.NewReader(cut), trace.ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ferr error
	for i := 0; i < w.NumFrames(); i++ {
		if _, ferr = r.NextFrame(); ferr != nil {
			break
		}
	}
	if !errors.Is(ferr, traceerr.ErrTruncated) {
		t.Fatalf("strict err = %v, want ErrTruncated", ferr)
	}

	r, err = trace.NewStreamReader(bytes.NewReader(cut), trace.ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	frames := drainFrames(t, r)
	if len(frames) != 2 {
		t.Fatalf("lenient read %d frames from truncated stream, want 2", len(frames))
	}
	if d := r.Diagnostics(); d.BytesDiscarded == 0 {
		t.Errorf("truncated tail not accounted: %+v", d)
	}
}

func TestStreamV2VersionMismatch(t *testing.T) {
	w := tracetest.Tiny()
	data, _ := encodeV2Boundaries(t, w)
	future := append([]byte{}, data...)
	future[4] = 9 // version byte after "3DWS"
	_, err := trace.NewStreamReader(bytes.NewReader(future), trace.ReaderOptions{})
	if !errors.Is(err, traceerr.ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	// Lenient mode cannot conjure a parser for an unknown version either.
	_, err = trace.NewStreamReader(bytes.NewReader(future), trace.ReaderOptions{Lenient: true})
	if !errors.Is(err, traceerr.ErrVersionMismatch) {
		t.Fatalf("lenient err = %v, want ErrVersionMismatch", err)
	}
}

func TestStreamV2InvalidFrameLenient(t *testing.T) {
	w := tracetest.Tiny()
	w.Frames[1].Draws[0].CoverageFrac = 9 // invalid draw, others in frame stay valid
	data, _ := encodeV2Boundaries(t, w)

	r, err := trace.NewStreamReader(bytes.NewReader(data), trace.ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	frames := drainFrames(t, r)
	if len(frames) != w.NumFrames() {
		t.Fatalf("read %d frames, want %d (bad draw filtered, frame kept)", len(frames), w.NumFrames())
	}
	if len(frames[1].Draws) != len(w.Frames[1].Draws)-1 {
		t.Fatalf("frame 1 has %d draws, want %d", len(frames[1].Draws), len(w.Frames[1].Draws)-1)
	}
	d := r.Diagnostics()
	if d.DrawsDropped != 1 || d.FramesSkipped != 0 {
		t.Errorf("diagnostics %+v, want exactly 1 draw dropped", d)
	}

	// Strict mode must refuse the same frame with ErrInvalidFrame.
	rs, err := trace.NewStreamReader(bytes.NewReader(data), trace.ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.NextFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.NextFrame(); !errors.Is(err, traceerr.ErrInvalidFrame) {
		t.Fatalf("strict err = %v, want ErrInvalidFrame", err)
	}
}

func TestStreamV2GarbagePrefixLenient(t *testing.T) {
	// Garbage before the magic means the header cannot be located:
	// even lenient construction fails (no resource tables, no frames).
	w := tracetest.Tiny()
	data, _ := encodeV2Boundaries(t, w)
	junk := append([]byte("garbage garbage"), data...)
	if _, err := trace.NewStreamReader(bytes.NewReader(junk), trace.ReaderOptions{Lenient: true}); err == nil {
		t.Fatal("stream with garbage prefix accepted")
	}
}
