package trace

import (
	"errors"
	"fmt"

	"repro/internal/shader"
	"repro/internal/traceerr"
)

// Validate checks referential and value integrity of the workload:
// every draw references registered shaders of the right stage, valid
// resource ids, and carries in-range screen-space measurements.
// The first problem found is returned with its frame/draw coordinates.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("trace: workload has empty name")
	}
	if w.Shaders == nil {
		return fmt.Errorf("trace: workload %q has nil shader registry", w.Name)
	}
	if len(w.Frames) == 0 {
		return fmt.Errorf("trace: workload %q has no frames", w.Name)
	}
	for fi := range w.Frames {
		f := &w.Frames[fi]
		if len(f.Draws) == 0 {
			return fmt.Errorf("trace: %q frame %d has no draws", w.Name, fi)
		}
		for di := range f.Draws {
			if err := w.validateDraw(&f.Draws[di]); err != nil {
				return fmt.Errorf("trace: %q frame %d draw %d: %w", w.Name, fi, di, err)
			}
		}
	}
	return nil
}

// ValidateAll checks the same invariants as Validate but collects
// every violation instead of stopping at the first, joined with
// errors.Join. A nil result means the workload is fully valid. Use it
// when triaging a damaged capture: one pass names everything wrong
// rather than one problem per run.
func (w *Workload) ValidateAll() error {
	var errs []error
	if w.Name == "" {
		errs = append(errs, fmt.Errorf("trace: workload has empty name"))
	}
	if w.Shaders == nil {
		errs = append(errs, fmt.Errorf("trace: workload %q has nil shader registry", w.Name))
		return errors.Join(errs...) // draw checks need the registry
	}
	if len(w.Frames) == 0 {
		errs = append(errs, fmt.Errorf("trace: workload %q has no frames", w.Name))
	}
	for fi := range w.Frames {
		f := &w.Frames[fi]
		if len(f.Draws) == 0 {
			errs = append(errs, fmt.Errorf("trace: %q frame %d has no draws", w.Name, fi))
		}
		for di := range f.Draws {
			if err := w.validateDraw(&f.Draws[di]); err != nil {
				errs = append(errs, fmt.Errorf("trace: %q frame %d draw %d: %w", w.Name, fi, di, err))
			}
		}
	}
	return errors.Join(errs...)
}

// SanitizeFrame removes draws that fail validation from f in place —
// the lenient-mode draw filter. It returns how many draws were dropped
// and their joined violations (nil when the frame was clean). The
// receiver provides the resource tables; its own frames are untouched.
func (w *Workload) SanitizeFrame(f *Frame) (int, error) {
	var errs []error
	kept := f.Draws[:0]
	for di := range f.Draws {
		if err := w.validateDraw(&f.Draws[di]); err != nil {
			errs = append(errs, fmt.Errorf("draw %d: %w", di, err))
			continue
		}
		kept = append(kept, f.Draws[di])
	}
	dropped := len(f.Draws) - len(kept)
	f.Draws = kept
	return dropped, errors.Join(errs...)
}

// Sanitize drops invalid draws and unusable frames from w in place —
// the whole-workload lenient repair pass — returning the accounting.
// It fails only when the workload is structurally beyond repair (no
// name or shader registry) or when nothing usable survives.
func (w *Workload) Sanitize() (traceerr.Diagnostics, error) {
	var diag traceerr.Diagnostics
	if w.Name == "" || w.Shaders == nil {
		// Structurally hopeless content classifies as an invalid frame
		// for ingestion error mapping: the bytes parsed but don't
		// describe a usable workload.
		return diag, fmt.Errorf("trace: workload beyond repair (%v): %w", w.Validate(), traceerr.ErrInvalidFrame)
	}
	kept := w.Frames[:0]
	for fi := range w.Frames {
		f := &w.Frames[fi]
		dropped, _ := w.SanitizeFrame(f)
		diag.DrawsDropped += dropped
		if len(f.Draws) == 0 {
			diag.FramesSkipped++
			continue
		}
		kept = append(kept, *f)
	}
	w.Frames = kept
	if len(w.Frames) == 0 {
		return diag, fmt.Errorf("trace: no usable frames survive sanitization (%v): %w",
			diag, traceerr.ErrInvalidFrame)
	}
	return diag, nil
}

func (w *Workload) validateDraw(d *DrawCall) error {
	if d.VertexCount <= 0 {
		return fmt.Errorf("vertex count %d <= 0", d.VertexCount)
	}
	if d.InstanceCount <= 0 {
		return fmt.Errorf("instance count %d <= 0", d.InstanceCount)
	}
	vs, err := w.Shaders.Lookup(d.VS)
	if err != nil {
		return fmt.Errorf("vertex shader: %w", err)
	}
	if vs.Stage != shader.StageVertex {
		return fmt.Errorf("shader %d bound as VS has stage %v", d.VS, vs.Stage)
	}
	ps, err := w.Shaders.Lookup(d.PS)
	if err != nil {
		return fmt.Errorf("pixel shader: %w", err)
	}
	if ps.Stage != shader.StagePixel {
		return fmt.Errorf("shader %d bound as PS has stage %v", d.PS, ps.Stage)
	}
	// Every texture slot the pixel shader samples must be bound.
	for _, slot := range ps.TextureSlots() {
		if slot >= len(d.Textures) || d.Textures[slot] == 0 {
			return fmt.Errorf("pixel shader %d samples slot %d which is unbound", d.PS, slot)
		}
	}
	for slot, tid := range d.Textures {
		if tid == 0 {
			continue
		}
		if _, err := w.Texture(tid); err != nil {
			return fmt.Errorf("slot %d: %w", slot, err)
		}
	}
	if _, err := w.RenderTarget(d.RT); err != nil {
		return err
	}
	if d.CoverageFrac < 0 || d.CoverageFrac > 1 {
		return fmt.Errorf("coverage %v outside [0, 1]", d.CoverageFrac)
	}
	if d.Overdraw < 1 {
		return fmt.Errorf("overdraw %v < 1", d.Overdraw)
	}
	if d.TexLocality <= 0 || d.TexLocality > 1 {
		return fmt.Errorf("texture locality %v outside (0, 1]", d.TexLocality)
	}
	return nil
}
