package trace_test

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracetest"
)

func TestValidateAcceptsFixture(t *testing.T) {
	if err := tracetest.Tiny().Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
}

// corrupt applies f to a fresh fixture and asserts Validate fails with
// a message containing wantSub.
func corrupt(t *testing.T, wantSub string, f func(w *trace.Workload)) {
	t.Helper()
	w := tracetest.Tiny()
	f(w)
	err := w.Validate()
	if err == nil {
		t.Fatalf("corruption %q not detected", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	corrupt(t, "empty name", func(w *trace.Workload) { w.Name = "" })
	corrupt(t, "no frames", func(w *trace.Workload) { w.Frames = nil })
	corrupt(t, "no draws", func(w *trace.Workload) { w.Frames[1].Draws = nil })
	corrupt(t, "vertex count", func(w *trace.Workload) { w.Frames[0].Draws[0].VertexCount = 0 })
	corrupt(t, "instance count", func(w *trace.Workload) { w.Frames[0].Draws[0].InstanceCount = -1 })
	corrupt(t, "vertex shader", func(w *trace.Workload) { w.Frames[0].Draws[0].VS = 999 })
	corrupt(t, "pixel shader", func(w *trace.Workload) { w.Frames[0].Draws[0].PS = 999 })
	corrupt(t, "bound as VS", func(w *trace.Workload) {
		// Bind a pixel shader in the VS slot.
		w.Frames[0].Draws[0].VS = w.Frames[0].Draws[0].PS
	})
	corrupt(t, "unbound", func(w *trace.Workload) {
		// Draw 0 binds ps.textured which samples slots 0 and 1.
		w.Frames[0].Draws[0].Textures = nil
	})
	corrupt(t, "texture id", func(w *trace.Workload) {
		w.Frames[0].Draws[0].Textures = []trace.TextureID{1, 99}
	})
	corrupt(t, "render target", func(w *trace.Workload) { w.Frames[0].Draws[0].RT = 5 })
	corrupt(t, "coverage", func(w *trace.Workload) { w.Frames[0].Draws[0].CoverageFrac = 1.5 })
	corrupt(t, "overdraw", func(w *trace.Workload) { w.Frames[0].Draws[0].Overdraw = 0.5 })
	corrupt(t, "locality", func(w *trace.Workload) { w.Frames[0].Draws[0].TexLocality = 0 })
}

func TestValidateReportsCoordinates(t *testing.T) {
	w := tracetest.Tiny()
	w.Frames[2].Draws[3].VertexCount = -5
	err := w.Validate()
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "frame 2 draw 3") {
		t.Errorf("error lacks coordinates: %v", err)
	}
}

func TestValidateAllCollectsEveryViolation(t *testing.T) {
	if err := tracetest.Tiny().ValidateAll(); err != nil {
		t.Fatalf("clean fixture: ValidateAll = %v, want nil", err)
	}

	w := tracetest.Tiny()
	w.Frames[0].Draws[0].CoverageFrac = 1.5
	w.Frames[1].Draws[1].Overdraw = 0.5
	w.Frames[2].Draws[0].VS = 999
	err := w.ValidateAll()
	if err == nil {
		t.Fatal("three violations, ValidateAll = nil")
	}
	// Validate stops at the first problem; ValidateAll must name all three.
	for _, want := range []string{
		"frame 0 draw 0", "coverage 1.5",
		"frame 1 draw 1", "overdraw 0.5",
		"frame 2 draw 0", "vertex shader",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
	if first := w.Validate(); first == nil || strings.Contains(first.Error(), "overdraw") {
		t.Errorf("Validate should stop at the first violation, got %v", first)
	}
}

func TestSanitizeFrameDropsOnlyInvalidDraws(t *testing.T) {
	w := tracetest.Tiny()
	f := &w.Frames[0]
	total := len(f.Draws)
	if total < 3 {
		t.Fatalf("fixture frame 0 has %d draws, need >= 3", total)
	}
	survivor := f.Draws[1] // untouched draw, must come through intact
	f.Draws[0].CoverageFrac = 2
	f.Draws[2].Overdraw = 0

	dropped, err := w.SanitizeFrame(f)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if err == nil || !strings.Contains(err.Error(), "draw 0") || !strings.Contains(err.Error(), "draw 2") {
		t.Fatalf("joined violations should name draws 0 and 2, got %v", err)
	}
	if len(f.Draws) != total-2 {
		t.Fatalf("frame kept %d draws, want %d", len(f.Draws), total-2)
	}
	if f.Draws[0].VS != survivor.VS || f.Draws[0].CoverageFrac != survivor.CoverageFrac {
		t.Error("surviving draw was altered by sanitization")
	}
	// A sanitized frame must validate again.
	if err := w.Validate(); err != nil {
		t.Fatalf("workload invalid after sanitization: %v", err)
	}

	// Clean frames report zero drops and no error.
	dropped, err = w.SanitizeFrame(&w.Frames[1])
	if dropped != 0 || err != nil {
		t.Fatalf("clean frame: dropped=%d err=%v, want 0, nil", dropped, err)
	}
}
