package trace_test

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracetest"
)

func TestValidateAcceptsFixture(t *testing.T) {
	if err := tracetest.Tiny().Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
}

// corrupt applies f to a fresh fixture and asserts Validate fails with
// a message containing wantSub.
func corrupt(t *testing.T, wantSub string, f func(w *trace.Workload)) {
	t.Helper()
	w := tracetest.Tiny()
	f(w)
	err := w.Validate()
	if err == nil {
		t.Fatalf("corruption %q not detected", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	corrupt(t, "empty name", func(w *trace.Workload) { w.Name = "" })
	corrupt(t, "no frames", func(w *trace.Workload) { w.Frames = nil })
	corrupt(t, "no draws", func(w *trace.Workload) { w.Frames[1].Draws = nil })
	corrupt(t, "vertex count", func(w *trace.Workload) { w.Frames[0].Draws[0].VertexCount = 0 })
	corrupt(t, "instance count", func(w *trace.Workload) { w.Frames[0].Draws[0].InstanceCount = -1 })
	corrupt(t, "vertex shader", func(w *trace.Workload) { w.Frames[0].Draws[0].VS = 999 })
	corrupt(t, "pixel shader", func(w *trace.Workload) { w.Frames[0].Draws[0].PS = 999 })
	corrupt(t, "bound as VS", func(w *trace.Workload) {
		// Bind a pixel shader in the VS slot.
		w.Frames[0].Draws[0].VS = w.Frames[0].Draws[0].PS
	})
	corrupt(t, "unbound", func(w *trace.Workload) {
		// Draw 0 binds ps.textured which samples slots 0 and 1.
		w.Frames[0].Draws[0].Textures = nil
	})
	corrupt(t, "texture id", func(w *trace.Workload) {
		w.Frames[0].Draws[0].Textures = []trace.TextureID{1, 99}
	})
	corrupt(t, "render target", func(w *trace.Workload) { w.Frames[0].Draws[0].RT = 5 })
	corrupt(t, "coverage", func(w *trace.Workload) { w.Frames[0].Draws[0].CoverageFrac = 1.5 })
	corrupt(t, "overdraw", func(w *trace.Workload) { w.Frames[0].Draws[0].Overdraw = 0.5 })
	corrupt(t, "locality", func(w *trace.Workload) { w.Frames[0].Draws[0].TexLocality = 0 })
}

func TestValidateReportsCoordinates(t *testing.T) {
	w := tracetest.Tiny()
	w.Frames[2].Draws[3].VertexCount = -5
	err := w.Validate()
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "frame 2 draw 3") {
		t.Errorf("error lacks coordinates: %v", err)
	}
}
