// Package traceerr is the error taxonomy of trace ingestion. Every
// failure the stream readers and decoders can hit maps onto one of a
// small set of typed sentinels, wrapped with the coordinates (record,
// frame, byte offset) where it happened, so callers branch with
// errors.Is/errors.As instead of string matching — and so fleet-scale
// ingestion can account for every discarded byte.
//
// The package also defines Diagnostics, the accounting record lenient
// readers and pipelines fill in while degrading gracefully: how many
// records were resynced past, frames skipped, draws dropped and bytes
// discarded on the way to a result.
package traceerr

import (
	"errors"
	"fmt"
)

// Sentinel failure classes. Wrap them (directly or via RecordError) so
// errors.Is classifies any ingestion failure.
var (
	// ErrTruncated marks input that ends mid-record or mid-value: the
	// capture was cut short (crashed replayer, partial upload).
	ErrTruncated = errors.New("trace: input truncated")

	// ErrCorruptRecord marks a record whose framing or checksum does
	// not hold: bit rot, torn writes, or a resync that gave up.
	ErrCorruptRecord = errors.New("trace: corrupt record")

	// ErrVersionMismatch marks a container whose format version this
	// build does not speak.
	ErrVersionMismatch = errors.New("trace: stream version mismatch")

	// ErrInvalidFrame marks a frame that decoded cleanly but failed
	// semantic validation (draws referencing unknown resources,
	// out-of-range measurements).
	ErrInvalidFrame = errors.New("trace: invalid frame")

	// ErrTooLarge marks input rejected by a decoder size cap before it
	// could exhaust memory.
	ErrTooLarge = errors.New("trace: input exceeds size cap")
)

// RecordError wraps a sentinel with the coordinates of the failing
// record, so strict-mode callers can report exactly where ingestion
// stopped. Record and Frame are -1 when unknown.
type RecordError struct {
	Kind   error // one of the sentinels above
	Record int   // record index in the stream, -1 if unknown
	Frame  int   // frame index, -1 if unknown or not a frame record
	Offset int64 // byte offset of the record start, -1 if unknown
	Cause  error // underlying error, may be nil
}

// Error implements error.
func (e *RecordError) Error() string {
	msg := e.Kind.Error()
	if e.Record >= 0 {
		msg = fmt.Sprintf("%s (record %d", msg, e.Record)
		if e.Frame >= 0 {
			msg = fmt.Sprintf("%s, frame %d", msg, e.Frame)
		}
		if e.Offset >= 0 {
			msg = fmt.Sprintf("%s, offset %d", msg, e.Offset)
		}
		msg += ")"
	} else if e.Offset >= 0 {
		msg = fmt.Sprintf("%s (offset %d)", msg, e.Offset)
	}
	if e.Cause != nil {
		msg = fmt.Sprintf("%s: %v", msg, e.Cause)
	}
	return msg
}

// Unwrap exposes both the sentinel and the cause to errors.Is/As.
func (e *RecordError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Kind, e.Cause}
	}
	return []error{e.Kind}
}

// Diagnostics accounts for everything a lenient ingestion pass skipped
// or threw away. The zero value means a clean run.
type Diagnostics struct {
	RecordsResynced int   // corrupt records scanned past to the next boundary
	FramesSkipped   int   // frames dropped whole (undecodable or empty after filtering)
	DrawsDropped    int   // individual draws dropped by validation filtering
	BytesDiscarded  int64 // bytes consumed without producing a record
}

// Any reports whether any degradation happened.
func (d Diagnostics) Any() bool {
	return d.RecordsResynced != 0 || d.FramesSkipped != 0 || d.DrawsDropped != 0 || d.BytesDiscarded != 0
}

// Add merges another pass's accounting into d.
func (d *Diagnostics) Add(o Diagnostics) {
	d.RecordsResynced += o.RecordsResynced
	d.FramesSkipped += o.FramesSkipped
	d.DrawsDropped += o.DrawsDropped
	d.BytesDiscarded += o.BytesDiscarded
}

// Map flattens the accounting into named totals — the form the
// observability layer's diagnostics section and metrics feed consume.
// Every class is present even at zero, so manifests name what was
// tracked, not just what happened.
func (d Diagnostics) Map() map[string]int64 {
	return map[string]int64{
		"records_resynced": int64(d.RecordsResynced),
		"frames_skipped":   int64(d.FramesSkipped),
		"draws_dropped":    int64(d.DrawsDropped),
		"bytes_discarded":  d.BytesDiscarded,
	}
}

// String renders the accounting for CLI summaries.
func (d Diagnostics) String() string {
	if !d.Any() {
		return "clean (no records resynced, no frames skipped)"
	}
	return fmt.Sprintf("%d records resynced, %d frames skipped, %d draws dropped, %d bytes discarded",
		d.RecordsResynced, d.FramesSkipped, d.DrawsDropped, d.BytesDiscarded)
}
