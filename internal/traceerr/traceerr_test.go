package traceerr_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/traceerr"
)

func TestRecordErrorClassifiesViaIs(t *testing.T) {
	cause := errors.New("crc 0xdead != 0xbeef")
	err := error(&traceerr.RecordError{
		Kind: traceerr.ErrCorruptRecord, Record: 7, Frame: 6, Offset: 4096, Cause: cause,
	})
	if !errors.Is(err, traceerr.ErrCorruptRecord) {
		t.Error("not classified as ErrCorruptRecord")
	}
	if errors.Is(err, traceerr.ErrTruncated) {
		t.Error("misclassified as ErrTruncated")
	}
	if !errors.Is(err, cause) {
		t.Error("cause not reachable via Is")
	}
	var re *traceerr.RecordError
	if !errors.As(err, &re) || re.Record != 7 {
		t.Errorf("As failed or wrong record: %+v", re)
	}
	// Wrapping through fmt keeps the classification.
	wrapped := fmt.Errorf("stream: %w", err)
	if !errors.Is(wrapped, traceerr.ErrCorruptRecord) {
		t.Error("classification lost through fmt wrapping")
	}
}

func TestRecordErrorMessageCarriesCoordinates(t *testing.T) {
	err := &traceerr.RecordError{Kind: traceerr.ErrCorruptRecord, Record: 3, Frame: 2, Offset: 100}
	msg := err.Error()
	for _, want := range []string{"record 3", "frame 2", "offset 100"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	// Unknown coordinates stay out of the message.
	bare := &traceerr.RecordError{Kind: traceerr.ErrTruncated, Record: -1, Frame: -1, Offset: -1}
	if strings.Contains(bare.Error(), "record") {
		t.Errorf("message %q mentions unknown record", bare.Error())
	}
}

func TestDiagnostics(t *testing.T) {
	var d traceerr.Diagnostics
	if d.Any() {
		t.Error("zero value reports degradation")
	}
	if !strings.Contains(d.String(), "clean") {
		t.Errorf("clean String = %q", d.String())
	}
	d.Add(traceerr.Diagnostics{RecordsResynced: 1, BytesDiscarded: 10})
	d.Add(traceerr.Diagnostics{FramesSkipped: 2, DrawsDropped: 3, BytesDiscarded: 5})
	if !d.Any() {
		t.Error("degradation not reported")
	}
	want := traceerr.Diagnostics{RecordsResynced: 1, FramesSkipped: 2, DrawsDropped: 3, BytesDiscarded: 15}
	if d != want {
		t.Errorf("Add merged to %+v, want %+v", d, want)
	}
	for _, frag := range []string{"1 records resynced", "2 frames skipped", "3 draws dropped", "15 bytes discarded"} {
		if !strings.Contains(d.String(), frag) {
			t.Errorf("String %q missing %q", d.String(), frag)
		}
	}
}
