package tracetest

import (
	"fmt"
	"sync"

	"repro/internal/synth"
	"repro/internal/trace"
)

// cachedEntry memoizes one (profile, seed) generation.
type cachedEntry struct {
	once sync.Once
	w    *trace.Workload
	err  error
}

// cache maps a profile+seed fingerprint to its *cachedEntry.
var cache sync.Map

// CachedWorkload returns the synthetic workload for (p, seed),
// generating it at most once per process; concurrent callers share one
// generation. Tests and benchmarks that only read a corpus should use
// this instead of synth.Generate — the suite regenerates the same
// workloads dozens of times otherwise.
//
// The returned workload is SHARED: callers must treat it as read-only.
// Tests that sanitize, corrupt or otherwise mutate a workload must
// keep calling synth.Generate for a private copy.
func CachedWorkload(p synth.Profile, seed uint64) (*trace.Workload, error) {
	key := fmt.Sprintf("%#v|seed=%d", p, seed)
	e, _ := cache.LoadOrStore(key, &cachedEntry{})
	entry := e.(*cachedEntry)
	entry.once.Do(func() {
		entry.w, entry.err = synth.Generate(p, seed)
	})
	return entry.w, entry.err
}
