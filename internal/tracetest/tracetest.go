// Package tracetest builds small hand-constructed workloads for unit
// tests across the library. Unlike internal/synth these fixtures are
// tiny, fully spelled out, and independent of the generator under test.
package tracetest

import (
	"fmt"

	"repro/internal/shader"
	"repro/internal/trace"
)

// Tiny returns a small valid workload: 3 frames, 4 draws each, two
// vertex shaders, two pixel shaders (one texture-heavy, one ALU-only),
// two textures and one render target. It panics on construction errors
// because the fixture is a constant.
func Tiny() *trace.Workload {
	reg := shader.NewRegistry()
	mustRegister := func(p *shader.Program) shader.ID {
		id, err := reg.Register(p)
		if err != nil {
			panic(fmt.Sprintf("tracetest: %v", err))
		}
		return id
	}
	vsSimple := mustRegister(&shader.Program{Stage: shader.StageVertex, Name: "vs.simple", Body: []shader.Instr{
		{Op: shader.OpInterp}, {Op: shader.OpALU}, {Op: shader.OpALU}, {Op: shader.OpALU},
	}})
	vsSkin := mustRegister(&shader.Program{Stage: shader.StageVertex, Name: "vs.skinned", Body: []shader.Instr{
		{Op: shader.OpInterp}, {Op: shader.OpInterp}, {Op: shader.OpMem},
		{Op: shader.OpALU}, {Op: shader.OpALU}, {Op: shader.OpALU}, {Op: shader.OpALU},
		{Op: shader.OpALU}, {Op: shader.OpSFU}, {Op: shader.OpCF},
	}})
	psFlat := mustRegister(&shader.Program{Stage: shader.StagePixel, Name: "ps.flat", Body: []shader.Instr{
		{Op: shader.OpInterp}, {Op: shader.OpALU}, {Op: shader.OpALU},
	}})
	psTex := mustRegister(&shader.Program{Stage: shader.StagePixel, Name: "ps.textured", Body: []shader.Instr{
		{Op: shader.OpInterp}, {Op: shader.OpTex, Slot: 0}, {Op: shader.OpTex, Slot: 1},
		{Op: shader.OpALU}, {Op: shader.OpALU}, {Op: shader.OpALU}, {Op: shader.OpSFU},
	}})

	textures := []trace.Texture{
		{Width: 256, Height: 256, BytesPerTexel: 4, MipLevels: 8},
		{Width: 512, Height: 512, BytesPerTexel: 4, MipLevels: 9},
	}
	rts := []trace.RenderTarget{{Width: 1280, Height: 720, BytesPerPixel: 4, HasDepth: true}}

	baseDraws := []trace.DrawCall{
		{
			VertexCount: 3000, InstanceCount: 1, Topology: trace.TriangleList,
			VS: vsSimple, PS: psTex, Textures: []trace.TextureID{1, 2}, RT: 1,
			DepthEnable: true, CoverageFrac: 0.30, Overdraw: 1.4, TexLocality: 0.5,
			MaterialID: 1,
		},
		{
			VertexCount: 1200, InstanceCount: 2, Topology: trace.TriangleStrip,
			VS: vsSkin, PS: psTex, Textures: []trace.TextureID{2, 1}, RT: 1,
			DepthEnable: true, CoverageFrac: 0.10, Overdraw: 1.1, TexLocality: 0.7,
			MaterialID: 2,
		},
		{
			VertexCount: 300, InstanceCount: 1, Topology: trace.TriangleList,
			VS: vsSimple, PS: psFlat, RT: 1,
			BlendEnable: true, CoverageFrac: 0.05, Overdraw: 2.0, TexLocality: 1.0,
			MaterialID: 3,
		},
		{
			VertexCount: 60, InstanceCount: 1, Topology: trace.TriangleList,
			VS: vsSimple, PS: psFlat, RT: 1,
			CoverageFrac: 0.02, Overdraw: 1.0, TexLocality: 1.0,
			MaterialID: 3,
		},
	}

	frames := make([]trace.Frame, 3)
	for i := range frames {
		draws := make([]trace.DrawCall, len(baseDraws))
		copy(draws, baseDraws)
		// Vary geometry slightly per frame so frames are not identical.
		for j := range draws {
			draws[j].VertexCount += i * 30
		}
		frames[i] = trace.Frame{Scene: "fixture", Draws: draws}
	}

	w := &trace.Workload{
		Name:          "tiny",
		Frames:        frames,
		Shaders:       reg,
		Textures:      textures,
		RenderTargets: rts,
	}
	if err := w.Validate(); err != nil {
		panic(fmt.Sprintf("tracetest: fixture invalid: %v", err))
	}
	return w
}
